#include "routing/policy.h"

#include <gtest/gtest.h>

#include "routing/permutations.h"

namespace mdmesh {
namespace {

Network MakeLoadedNetwork(const Topology& topo, int packets_per_proc) {
  Network net(topo);
  std::int64_t id = 0;
  Rng rng(4);
  auto dest = RandomPermutation(topo, rng);
  for (int t = 0; t < packets_per_proc; ++t) {
    for (ProcId p = 0; p < topo.size(); ++p) {
      Packet pkt;
      pkt.id = id++;
      pkt.tag = t;
      pkt.dest = dest[static_cast<std::size_t>(p)];
      net.Add(p, pkt);
    }
  }
  return net;
}

TEST(PolicyTest, ZeroModeClearsClasses) {
  Topology topo(3, 4, Wrap::kMesh);
  Network net = MakeLoadedNetwork(topo, 2);
  net.ForEach([](ProcId, Packet& pkt) { pkt.klass = 2; });
  AssignClasses(net, ClassMode::kZero, nullptr, nullptr);
  net.ForEach([](ProcId, const Packet& pkt) { EXPECT_EQ(pkt.klass, 0); });
}

TEST(PolicyTest, RandomModeUsesAllClasses) {
  Topology topo(3, 4, Wrap::kMesh);
  Network net = MakeLoadedNetwork(topo, 4);
  Rng rng(9);
  AssignClasses(net, ClassMode::kRandom, nullptr, &rng);
  std::vector<std::int64_t> count(3, 0);
  net.ForEach([&](ProcId, const Packet& pkt) {
    ASSERT_LT(pkt.klass, 3);
    ++count[pkt.klass];
  });
  const std::int64_t total = topo.size() * 4;
  for (std::int64_t c : count) {
    EXPECT_GT(c, total / 5);
    EXPECT_LT(c, total / 2);
  }
}

TEST(PolicyTest, RandomModeWithoutRngThrows) {
  Topology topo(2, 4, Wrap::kMesh);
  Network net = MakeLoadedNetwork(topo, 1);
  EXPECT_THROW(AssignClasses(net, ClassMode::kRandom, nullptr, nullptr),
               std::invalid_argument);
}

TEST(PolicyTest, ByPermutationUsesTagModD) {
  Topology topo(3, 4, Wrap::kMesh);
  Network net = MakeLoadedNetwork(topo, 6);
  AssignClasses(net, ClassMode::kByPermutation, nullptr, nullptr);
  net.ForEach([](ProcId, const Packet& pkt) {
    EXPECT_EQ(pkt.klass, pkt.tag % 3);
  });
}

TEST(PolicyTest, LocalRankBalancesClassesWithinBlocks) {
  Topology topo(2, 8, Wrap::kMesh);
  BlockGrid grid(topo, 2);
  Network net = MakeLoadedNetwork(topo, 2);
  AssignClasses(net, ClassMode::kLocalRank, &grid, nullptr);
  // Each block holds 2 * B packets; classes must split them near-evenly.
  std::vector<std::vector<std::int64_t>> count(
      static_cast<std::size_t>(grid.num_blocks()),
      std::vector<std::int64_t>(2, 0));
  net.ForEach([&](ProcId p, const Packet& pkt) {
    ASSERT_LT(pkt.klass, 2);
    ++count[static_cast<std::size_t>(grid.BlockOf(p))][pkt.klass];
  });
  for (const auto& per_block : count) {
    EXPECT_EQ(per_block[0] + per_block[1], 2 * grid.block_volume());
    EXPECT_LE(AbsDiff(per_block[0], per_block[1]), 1);
  }
}

TEST(PolicyTest, LocalRankWithoutGridThrows) {
  Topology topo(2, 4, Wrap::kMesh);
  Network net = MakeLoadedNetwork(topo, 1);
  EXPECT_THROW(AssignClasses(net, ClassMode::kLocalRank, nullptr, nullptr),
               std::invalid_argument);
}

TEST(PolicyTest, LocalRankIsDeterministic) {
  Topology topo(2, 8, Wrap::kMesh);
  BlockGrid grid(topo, 2);
  auto classes = [&] {
    Network net = MakeLoadedNetwork(topo, 2);
    AssignClasses(net, ClassMode::kLocalRank, &grid, nullptr);
    std::vector<std::uint16_t> out;
    net.ForEach([&](ProcId, const Packet& pkt) { out.push_back(pkt.klass); });
    return out;
  };
  EXPECT_EQ(classes(), classes());
}

}  // namespace
}  // namespace mdmesh
