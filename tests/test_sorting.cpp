#include <gtest/gtest.h>

#include <tuple>

#include "sorting/kk_sort.h"
#include "sorting/simple_sort.h"

namespace mdmesh {
namespace {

struct Case {
  int d;
  int n;
  int g;
  InputKind input;
};

class SimpleSortTest : public ::testing::TestWithParam<Case> {};

TEST_P(SimpleSortTest, SortsAndStaysWithinBounds) {
  const Case c = GetParam();
  Topology topo(c.d, c.n, Wrap::kMesh);
  BlockGrid grid(topo, c.g);
  Network net(topo);
  FillInput(net, grid, 1, c.input, 17);
  SortOptions opts;
  opts.g = c.g;
  SortResult result = RunSort(SortAlgo::kSimple, net, grid, opts);
  EXPECT_TRUE(result.sorted) << result.Summary(topo.Diameter());
  EXPECT_TRUE(result.completed);
  EXPECT_GE(result.fixup_rounds, 0);
  // Lemma 3.1: at most one block of displacement => at most 2 merge rounds —
  // but only in the paper's alpha >= 2/3 regime (finite-n form m^2 <= 2B).
  const std::int64_t m = grid.num_blocks();
  const std::int64_t B = grid.block_volume();
  if (m * m <= 2 * B) {
    EXPECT_LE(result.fixup_rounds, 2) << result.Summary(topo.Diameter());
  }
  // Routing should stay well under the 2D baseline even at small n; the
  // asymptotic claim is 1.5 D + o(n).
  EXPECT_LT(result.RatioToDiameter(topo.Diameter()), 2.2)
      << result.Summary(topo.Diameter());
}

INSTANTIATE_TEST_SUITE_P(
    Cases, SimpleSortTest,
    ::testing::Values(Case{2, 8, 2, InputKind::kRandom},
                      Case{2, 16, 2, InputKind::kRandom},
                      Case{2, 16, 4, InputKind::kRandom},
                      Case{2, 32, 4, InputKind::kRandom},
                      Case{2, 16, 2, InputKind::kSortedAsc},
                      Case{2, 16, 2, InputKind::kSortedDesc},
                      Case{2, 16, 2, InputKind::kAllEqual},
                      Case{2, 16, 2, InputKind::kFewValues},
                      Case{3, 8, 2, InputKind::kRandom},
                      Case{3, 8, 2, InputKind::kSortedDesc},
                      Case{3, 16, 2, InputKind::kRandom},
                      Case{4, 8, 2, InputKind::kRandom}));

class FullSortTest : public ::testing::TestWithParam<Case> {};

TEST_P(FullSortTest, BaselineSortsEverywhere) {
  const Case c = GetParam();
  for (Wrap wrap : {Wrap::kMesh, Wrap::kTorus}) {
    Topology topo(c.d, c.n, wrap);
    BlockGrid grid(topo, c.g);
    Network net(topo);
    FillInput(net, grid, 1, c.input, 19);
    SortOptions opts;
    opts.g = c.g;
    SortResult result = RunSort(SortAlgo::kFull, net, grid, opts);
    EXPECT_TRUE(result.sorted) << result.Summary(topo.Diameter());
    EXPECT_LE(result.fixup_rounds, 2);
  }
}

INSTANTIATE_TEST_SUITE_P(Cases, FullSortTest,
                         ::testing::Values(Case{2, 8, 2, InputKind::kRandom},
                                           Case{2, 16, 2, InputKind::kRandom},
                                           Case{2, 16, 2, InputKind::kSortedDesc},
                                           Case{3, 8, 2, InputKind::kRandom},
                                           Case{3, 8, 2, InputKind::kAllEqual}));

TEST(SimpleSortTest, RejectsInvalidConfigurations) {
  Topology topo(2, 6, Wrap::kMesh);
  BlockGrid grid(topo, 2);  // b = 3, m = 4: m does not divide B = 9
  Network net(topo);
  FillInput(net, grid, 1, InputKind::kRandom, 1);
  SortOptions opts;
  opts.g = 2;
  EXPECT_THROW(SimpleSortRun(net, grid, opts), std::invalid_argument);
}

TEST(SimpleSortTest, RejectsZeroK) {
  Topology topo(2, 8, Wrap::kMesh);
  BlockGrid grid(topo, 2);
  Network net(topo);
  SortOptions opts;
  opts.k = 0;
  EXPECT_THROW(SimpleSortRun(net, grid, opts), std::invalid_argument);
}

TEST(SimpleSortTest, RoutingBeatsTheFullSortBaseline) {
  // The headline comparison of Theorem 3.1: concentration (1.5 D) vs the
  // whole-network unshuffle (2 D). The separation needs blocks genuinely
  // smaller than the network (at g = 2 the O(b) slack swamps it) and d >= 3
  // for Lemma 2.2; d=3, n=32, g=4 shows it cleanly (measured ~1.53 vs ~1.71).
  Topology topo(3, 32, Wrap::kMesh);
  BlockGrid grid(topo, 4);
  SortOptions opts;
  opts.g = 4;

  Network a(topo);
  FillInput(a, grid, 1, InputKind::kRandom, 23);
  SortResult simple = RunSort(SortAlgo::kSimple, a, grid, opts);

  Network b(topo);
  FillInput(b, grid, 1, InputKind::kRandom, 23);
  SortResult full = RunSort(SortAlgo::kFull, b, grid, opts);

  ASSERT_TRUE(simple.sorted);
  ASSERT_TRUE(full.sorted);
  EXPECT_LT(simple.routing_steps, full.routing_steps);
}

TEST(SimpleSortTest, PhasesAreReported) {
  Topology topo(2, 8, Wrap::kMesh);
  BlockGrid grid(topo, 2);
  Network net(topo);
  FillInput(net, grid, 1, InputKind::kRandom, 29);
  SortOptions opts;
  opts.g = 2;
  SortResult result = RunSort(SortAlgo::kSimple, net, grid, opts);
  ASSERT_EQ(result.phases.size(), 5u);
  EXPECT_EQ(result.phases[0].name, "local-sort");
  EXPECT_EQ(result.phases[1].name, "concentrate");
  EXPECT_EQ(result.phases[2].name, "center-sort");
  EXPECT_EQ(result.phases[3].name, "unconcentrate");
  EXPECT_EQ(result.phases[4].name, "fixup-merges");
  // Each routing phase covers at most ~3D/4 of distance.
  EXPECT_LE(result.phases[1].max_distance,
            3 * topo.Diameter() / 4 + 2 * grid.block_side());
  EXPECT_LE(result.phases[3].max_distance,
            3 * topo.Diameter() / 4 + 2 * grid.block_side());
}

TEST(SimpleSortTest, QueuesStayConstantBounded) {
  Topology topo(2, 16, Wrap::kMesh);
  BlockGrid grid(topo, 2);
  Network net(topo);
  FillInput(net, grid, 1, InputKind::kRandom, 31);
  SortOptions opts;
  opts.g = 2;
  SortResult result = RunSort(SortAlgo::kSimple, net, grid, opts);
  ASSERT_TRUE(result.sorted);
  EXPECT_LE(result.max_queue, 16);  // small constant, not Theta(n)
}

TEST(SimpleSortTest, DeterministicGivenSeed) {
  Topology topo(2, 8, Wrap::kMesh);
  BlockGrid grid(topo, 2);
  SortOptions opts;
  opts.g = 2;
  auto run = [&] {
    Network net(topo);
    FillInput(net, grid, 1, InputKind::kRandom, 37);
    return RunSort(SortAlgo::kSimple, net, grid, opts).routing_steps;
  };
  EXPECT_EQ(run(), run());
}

TEST(SimpleSortTest, RandomizedSpreadAblationStillSorts) {
  Topology topo(2, 16, Wrap::kMesh);
  BlockGrid grid(topo, 2);
  Network net(topo);
  FillInput(net, grid, 1, InputKind::kRandom, 41);
  SortOptions opts;
  opts.g = 2;
  opts.randomized_spread = true;
  opts.max_fixup_rounds = 16;  // uneven spread can displace a bit farther
  SortResult result = RunSort(SortAlgo::kSimple, net, grid, opts);
  EXPECT_TRUE(result.sorted) << result.Summary(topo.Diameter());
}

TEST(SimpleSortTest, ShrunkenCenterStillSorts) {
  // Corollary 3.1.2 machinery: mc = m/4 instead of m/2.
  Topology topo(2, 16, Wrap::kMesh);
  BlockGrid grid(topo, 4);  // m = 16
  Network net(topo);
  FillInput(net, grid, 1, InputKind::kRandom, 43);
  SortOptions opts;
  opts.g = 4;
  opts.center_blocks = 4;
  SortResult result = RunSort(SortAlgo::kSimple, net, grid, opts);
  EXPECT_TRUE(result.sorted) << result.Summary(topo.Diameter());
}

}  // namespace
}  // namespace mdmesh
