#include "sorting/spread.h"

#include <gtest/gtest.h>

#include <map>
#include <tuple>
#include <vector>

namespace mdmesh {
namespace {

// Exhaustive balance checks for the distribution formulas (DESIGN.md §2).

class ConcentrateBalanceTest
    : public ::testing::TestWithParam<std::tuple<int64_t, int64_t, int64_t>> {};

TEST_P(ConcentrateBalanceTest, EveryCenterSlotGetsExactShare) {
  auto [m, B, k] = GetParam();
  const std::int64_t mc = m / 2;
  // occupancy[c * B + pos] over all (j, i).
  std::vector<std::int64_t> occupancy(static_cast<std::size_t>(mc * B), 0);
  for (std::int64_t j = 0; j < m; ++j) {
    for (std::int64_t i = 0; i < k * B; ++i) {
      BlockDest bd = ConcentrateDest(i, j, m, mc, B);
      ASSERT_GE(bd.block, 0);
      ASSERT_LT(bd.block, mc);
      ASSERT_GE(bd.offset, 0);
      ASSERT_LT(bd.offset, B);
      ++occupancy[static_cast<std::size_t>(bd.block * B + bd.offset)];
    }
  }
  // Exactly 2k packets per center processor (the paper's step-2 invariant).
  const std::int64_t expected = k * m / mc;
  for (std::int64_t o : occupancy) EXPECT_EQ(o, expected);
}

INSTANTIATE_TEST_SUITE_P(Shapes, ConcentrateBalanceTest,
                         ::testing::Values(std::tuple{4, 16, 1},
                                           std::tuple{4, 16, 2},
                                           std::tuple{8, 64, 1},
                                           std::tuple{8, 512, 1},
                                           std::tuple{16, 64, 1},
                                           std::tuple{16, 256, 2},
                                           std::tuple{4, 64, 3}));

TEST(ConcentrateTest, EveryRankClassLandsInItsBlock) {
  // Rank i goes to C-block i mod mc: each center block samples every mc-th
  // local rank of every source block — the even-distribution property that
  // makes local ranks estimate global ranks.
  const std::int64_t m = 8, mc = 4, B = 64;
  for (std::int64_t j = 0; j < m; ++j) {
    for (std::int64_t i = 0; i < B; ++i) {
      EXPECT_EQ(ConcentrateDest(i, j, m, mc, B).block, i % mc);
    }
  }
}

class UnconcentrateBalanceTest
    : public ::testing::TestWithParam<std::tuple<int64_t, int64_t, int64_t>> {};

TEST_P(UnconcentrateBalanceTest, EveryProcessorGetsExactlyK) {
  auto [m, B, k] = GetParam();
  const std::int64_t mc = m / 2;
  const std::int64_t per_cblock = k * B * m / mc;
  std::vector<std::int64_t> occupancy(static_cast<std::size_t>(m * B), 0);
  for (std::int64_t j = 0; j < mc; ++j) {
    for (std::int64_t i = 0; i < per_cblock; ++i) {
      BlockDest bd = UnconcentrateDest(i, j, m, mc, B, k);
      ASSERT_GE(bd.block, 0);
      ASSERT_LT(bd.block, m);
      ASSERT_GE(bd.offset, 0);
      ASSERT_LT(bd.offset, B);
      ++occupancy[static_cast<std::size_t>(bd.block * B + bd.offset)];
    }
  }
  for (std::int64_t o : occupancy) EXPECT_EQ(o, k);
}

INSTANTIATE_TEST_SUITE_P(Shapes, UnconcentrateBalanceTest,
                         ::testing::Values(std::tuple{4, 16, 1},
                                           std::tuple{4, 16, 2},
                                           std::tuple{8, 64, 1},
                                           std::tuple{16, 64, 1},
                                           std::tuple{16, 256, 2}));

TEST(UnconcentrateTest, ConsecutiveRankWindowsFillConsecutiveBlocks) {
  const std::int64_t m = 8, mc = 4, B = 64, k = 1;
  const std::int64_t per_block = k * B / mc;  // ranks per destination block
  for (std::int64_t i = 0; i < k * B * m / mc; ++i) {
    EXPECT_EQ(UnconcentrateDest(i, 0, m, mc, B, k).block, i / per_block);
  }
}

TEST(UnshuffleTest, FullSpreadBalance) {
  const std::int64_t m = 8, B = 64, k = 2;
  std::vector<std::int64_t> occupancy(static_cast<std::size_t>(m * B), 0);
  for (std::int64_t j = 0; j < m; ++j) {
    for (std::int64_t i = 0; i < k * B; ++i) {
      BlockDest bd = UnshuffleDest(i, j, m, B);
      ++occupancy[static_cast<std::size_t>(bd.block * B + bd.offset)];
    }
  }
  for (std::int64_t o : occupancy) EXPECT_EQ(o, k);
}

TEST(UnshuffleTest, InverseSpreadBalance) {
  const std::int64_t m = 8, B = 64, k = 2;
  std::vector<std::int64_t> occupancy(static_cast<std::size_t>(m * B), 0);
  for (std::int64_t j = 0; j < m; ++j) {
    for (std::int64_t i = 0; i < k * B; ++i) {
      BlockDest bd = UnshuffleInvDest(i, j, m, B, k);
      ++occupancy[static_cast<std::size_t>(bd.block * B + bd.offset)];
    }
  }
  for (std::int64_t o : occupancy) EXPECT_EQ(o, k);
}

TEST(UnshuffleTest, K1IsBijective) {
  const std::int64_t m = 8, B = 64;
  std::map<std::pair<std::int64_t, std::int64_t>, int> seen;
  for (std::int64_t j = 0; j < m; ++j) {
    for (std::int64_t i = 0; i < B; ++i) {
      BlockDest bd = UnshuffleDest(i, j, m, B);
      const int hits = ++seen[std::make_pair(bd.block, bd.offset)];
      EXPECT_EQ(hits, 1);
    }
  }
  EXPECT_EQ(seen.size(), static_cast<std::size_t>(m * B));
}

TEST(UnshuffleTest, InverseIsRankMonotoneInBlocks) {
  const std::int64_t m = 8, B = 64, k = 1;
  for (std::int64_t i = 0; i + 1 < k * B; ++i) {
    EXPECT_LE(UnshuffleInvDest(i, 3, m, B, k).block,
              UnshuffleInvDest(i + 1, 3, m, B, k).block);
  }
}

}  // namespace
}  // namespace mdmesh
