#include "obs/publisher.h"

#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>

#include "obs/registry.h"
#include "util/thread_pool.h"

namespace mdmesh {
namespace {

std::string TempPath(const char* stem) {
  std::ostringstream os;
  os << "/tmp/" << stem << "_" << ::getpid() << ".json";
  return os.str();
}

/// Minimal blocking HTTP client: one GET, reads until the peer closes
/// (the publisher always answers Connection: close).
std::string HttpGet(int port, const std::string& path) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return "";
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return "";
  }
  const std::string req = "GET " + path + " HTTP/1.1\r\nHost: localhost\r\n"
                          "Connection: close\r\n\r\n";
  (void)!::send(fd, req.data(), req.size(), 0);
  std::string out;
  char buf[4096];
  ssize_t n;
  while ((n = ::recv(fd, buf, sizeof(buf), 0)) > 0) {
    out.append(buf, static_cast<std::size_t>(n));
  }
  ::close(fd);
  return out;
}

// ---------------------------------------------------------------------------
// Prometheus exposition.

TEST(PrometheusTest, RendersCountersGaugesAndSummaries) {
  MetricsRegistry reg;
  reg.counter("engine.steps").Add(42);
  reg.gauge("engine.max_queue").Set(7);
  for (int i = 1; i <= 100; ++i) reg.histogram("driver.latency").Add(i);
  const std::string text = reg.ToPrometheus();
  EXPECT_NE(text.find("# TYPE mdmesh_engine_steps counter"),
            std::string::npos);
  EXPECT_NE(text.find("mdmesh_engine_steps 42"), std::string::npos);
  EXPECT_NE(text.find("# TYPE mdmesh_engine_max_queue gauge"),
            std::string::npos);
  EXPECT_NE(text.find("mdmesh_engine_max_queue 7"), std::string::npos);
  EXPECT_NE(text.find("# TYPE mdmesh_driver_latency summary"),
            std::string::npos);
  EXPECT_NE(text.find("mdmesh_driver_latency{quantile=\"0.5\"}"),
            std::string::npos);
  EXPECT_NE(text.find("mdmesh_driver_latency_count 100"), std::string::npos);
  // Dotted registry names never leak into the exposition.
  EXPECT_EQ(text.find("engine.steps"), std::string::npos);
}

TEST(PrometheusTest, EveryLineIsCommentOrSample) {
  MetricsRegistry reg;
  reg.counter("a.b").Add(1);
  reg.gauge("c-d").Set(2);
  reg.histogram("e f").Add(3);
  std::istringstream lines(reg.ToPrometheus());
  std::string line;
  while (std::getline(lines, line)) {
    ASSERT_FALSE(line.empty());
    if (line[0] == '#') {
      EXPECT_EQ(line.rfind("# TYPE ", 0), 0u) << line;
      continue;
    }
    // Sample: "name[{labels}] value" — the name must be prom-legal.
    const std::size_t sp = line.rfind(' ');
    ASSERT_NE(sp, std::string::npos) << line;
    const std::string name = line.substr(0, line.find_first_of("{ "));
    for (char c : name) {
      const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                      (c >= '0' && c <= '9') || c == '_';
      EXPECT_TRUE(ok) << "illegal metric-name byte in: " << line;
    }
  }
}

// ---------------------------------------------------------------------------
// Live endpoint.

TEST(PublisherTest, ServesMetricsAndStatusOverHttp) {
  MetricsRegistry reg;
  reg.counter("engine.routes").Add(3);
  MetricsPublisher pub;
  MetricsPublisher::Options opts;
  opts.registry = &reg;
  opts.port = 0;  // ephemeral: parallel test runs cannot collide
  ASSERT_TRUE(pub.Start(opts));
  ASSERT_GT(pub.port(), 0);

  const std::string metrics = HttpGet(pub.port(), "/metrics");
  EXPECT_NE(metrics.find("200 OK"), std::string::npos);
  EXPECT_NE(metrics.find("text/plain; version=0.0.4"), std::string::npos);
  EXPECT_NE(metrics.find("mdmesh_engine_routes 3"), std::string::npos);

  // The endpoint renders on demand: a counter bumped after Start shows up.
  reg.counter("engine.routes").Add(2);
  EXPECT_NE(HttpGet(pub.port(), "/metrics").find("mdmesh_engine_routes 5"),
            std::string::npos);

  const std::string status = HttpGet(pub.port(), "/status");
  EXPECT_NE(status.find("200 OK"), std::string::npos);
  EXPECT_NE(status.find("application/json"), std::string::npos);
  EXPECT_NE(status.find("\"metrics\""), std::string::npos);

  EXPECT_NE(HttpGet(pub.port(), "/nope").find("404"), std::string::npos);
  EXPECT_GE(pub.requests_served(), 4);
  pub.Stop();
  EXPECT_FALSE(pub.running());
  pub.Stop();  // idempotent
}

TEST(PublisherTest, StartFailsWithoutRegistry) {
  MetricsPublisher pub;
  MetricsPublisher::Options opts;
  EXPECT_FALSE(pub.Start(opts));
  EXPECT_FALSE(pub.running());
}

TEST(PublisherTest, WritesStatusFileAtomicallyOnCadence) {
  MetricsRegistry reg;
  reg.counter("engine.steps").Add(9);
  RunManifest manifest;
  manifest.seed = 77;
  const std::string path = TempPath("publisher_status");
  MetricsPublisher pub;
  MetricsPublisher::Options opts;
  opts.registry = &reg;
  opts.status_file = path;
  opts.interval_ms = 10;
  opts.manifest = &manifest;
  ASSERT_TRUE(pub.Start(opts));
  EXPECT_EQ(pub.port(), -1);  // no HTTP requested
  // Poll the snapshot counter instead of sleeping a fixed cadence.
  for (int i = 0; i < 200 && pub.snapshots_written() < 2; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  EXPECT_GE(pub.snapshots_written(), 2);
  pub.Stop();
  std::ifstream tmp(path + ".tmp");
  EXPECT_FALSE(tmp.good());  // staging file renamed away
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::stringstream body;
  body << in.rdbuf();
  EXPECT_NE(body.str().find("\"metrics\""), std::string::npos);
  EXPECT_NE(body.str().find("\"manifest\""), std::string::npos);
  EXPECT_NE(body.str().find("engine.steps"), std::string::npos);
  std::remove(path.c_str());
}

// ---------------------------------------------------------------------------
// Registry under concurrent thread-pool hammering.

TEST(RegistryConcurrencyTest, ShardedCountersSurviveThreadPoolHammer) {
  MetricsRegistry reg;
  ThreadPool pool(4);
  auto& counter = reg.counter("hammer.count");
  auto& gauge = reg.gauge("hammer.peak");
  auto& hist = reg.histogram("hammer.values");
  constexpr std::int64_t kItems = 200000;
  constexpr int kRounds = 3;
  for (int round = 0; round < kRounds; ++round) {
    pool.ParallelFor(kItems, [&](std::int64_t b, std::int64_t e) {
      for (std::int64_t i = b; i < e; ++i) {
        counter.Add(1);
        gauge.Max(i);
        if ((i & 1023) == 0) hist.Add(i);
      }
    });
  }
  EXPECT_EQ(counter.Total(), kRounds * kItems);
  EXPECT_EQ(gauge.Value(), kItems - 1);
  const QuantileHistogram merged = hist.Merged();
  EXPECT_EQ(merged.count(), kRounds * ((kItems + 1023) / 1024));
  // The pool's lifetime dispatch counters saw every round.
  EXPECT_GE(pool.dispatches(), kRounds);
  EXPECT_EQ(pool.items_dispatched(), kRounds * kItems);
}

TEST(RegistryConcurrencyTest, ConcurrentReadersSeeConsistentSnapshots) {
  // A publisher-shaped reader (WritePrometheus/WriteJson in a loop) while
  // workers hammer the registry: no crashes, totals monotone.
  MetricsRegistry reg;
  ThreadPool pool(4);
  auto& counter = reg.counter("live.count");
  std::atomic<bool> stop{false};
  std::int64_t last_seen = 0;
  std::thread reader([&] {
    while (!stop.load(std::memory_order_acquire)) {
      const std::string text = reg.ToPrometheus();
      EXPECT_NE(text.find("mdmesh_live_count"), std::string::npos);
      const std::string json = reg.ToJson();
      EXPECT_NE(json.find("live.count"), std::string::npos);
      const std::int64_t now = counter.Total();
      EXPECT_GE(now, last_seen);
      last_seen = now;
    }
  });
  for (int round = 0; round < 20; ++round) {
    pool.ParallelFor(10000, [&](std::int64_t b, std::int64_t e) {
      for (std::int64_t i = b; i < e; ++i) counter.Add(1);
    });
  }
  stop.store(true, std::memory_order_release);
  reader.join();
  EXPECT_EQ(counter.Total(), 20 * 10000);
}

// ---------------------------------------------------------------------------
// Progress meter.

TEST(ProgressMeterTest, RateLimitsAndFormatsHeartbeat) {
  // force=false and a redirected stderr: nothing printed, but the meter
  // still formats lines internally so the cadence is testable.
  ProgressMeter meter(/*step_cap=*/1000, /*interval_ms=*/1, /*force=*/false);
  meter.Step(1, 500, 10);  // inside the first interval: no line yet
  EXPECT_EQ(meter.lines_emitted(), 0);
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  meter.Step(50, 450, 10);
  ASSERT_GE(meter.lines_emitted(), 1);
  EXPECT_NE(meter.last_line().find("step 50/1000"), std::string::npos);
  EXPECT_NE(meter.last_line().find("in-flight 450"), std::string::npos);
  meter.Finish();
  EXPECT_NE(meter.last_line().find("done"), std::string::npos);
  const std::int64_t lines = meter.lines_emitted();
  meter.Step(60, 440, 10);  // after Finish: silent
  meter.Finish();           // idempotent
  EXPECT_EQ(meter.lines_emitted(), lines);
}

TEST(ProgressMeterTest, ObserverAdapterMatchesEngineSignature) {
  ProgressMeter meter(0, 1, false);
  const auto observer = meter.Observer();
  observer(1, 10, 2);
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  observer(2, 8, 2);
  EXPECT_GE(meter.lines_emitted(), 1);
  // No step cap: the line has no ETA, just the step and rate.
  EXPECT_NE(meter.last_line().find("step 2"), std::string::npos);
  EXPECT_EQ(meter.last_line().find("eta"), std::string::npos);
}

}  // namespace
}  // namespace mdmesh
