// End-to-end assertions of the paper's quantitative claims at reproduction
// scale — the executable form of EXPERIMENTS.md. These are deliberately the
// strictest checks in the suite; if an algorithm regresses in *speed* (not
// just correctness), they catch it.
#include <gtest/gtest.h>

#include "core/mdmesh.h"

namespace mdmesh {
namespace {

TEST(PaperClaimsTest, TorusSortHitsExactlyThreeHalvesAtD2) {
  // Theorem 3.3 with the antipodal-copy reading is EXACT at d=2 for every
  // even n with b | n: full unshuffle costs D, survivors cost D/2.
  for (int n : {32, 64}) {
    SortOptions opts;
    opts.g = 4;
    opts.seed = 777;
    SortRow row = RunSortExperiment(SortAlgo::kTorus, {2, n, Wrap::kTorus}, opts);
    ASSERT_TRUE(row.result.sorted);
    EXPECT_DOUBLE_EQ(row.ratio, 1.5) << "n=" << n;
  }
}

TEST(PaperClaimsTest, OrderingCopyBelowSimpleBelowFull) {
  // Theorems 3.2 < 3.1 < baseline at the flagship mesh scale.
  SortOptions opts;
  opts.g = 8;
  opts.seed = 4242;
  const MeshSpec spec{2, 128, Wrap::kMesh};
  SortRow copy = RunSortExperiment(SortAlgo::kCopy, spec, opts);
  SortRow simple = RunSortExperiment(SortAlgo::kSimple, spec, opts);
  SortRow full = RunSortExperiment(SortAlgo::kFull, spec, opts);
  ASSERT_TRUE(copy.result.sorted && simple.result.sorted && full.result.sorted);
  EXPECT_LT(copy.result.routing_steps, simple.result.routing_steps);
  EXPECT_LT(simple.result.routing_steps, full.result.routing_steps);
  // Coefficients within 15% of the claims at this scale.
  EXPECT_NEAR(copy.ratio, 1.25, 0.15);
  EXPECT_NEAR(simple.ratio, 1.50, 0.15);
  EXPECT_NEAR(full.ratio, 2.00, 0.35);
}

TEST(PaperClaimsTest, SimpleSortWithinClaimPlusBlockSlack) {
  // Theorem 3.1: routing <= 1.5 D + O(b) at every tested scale.
  struct Case {
    MeshSpec spec;
    int g;
  };
  for (const Case& c : {Case{{2, 64, Wrap::kMesh}, 4},
                        Case{{2, 128, Wrap::kMesh}, 8},
                        Case{{3, 32, Wrap::kMesh}, 4}}) {
    SortOptions opts;
    opts.g = c.g;
    opts.seed = 12345;
    SortRow row = RunSortExperiment(SortAlgo::kSimple, c.spec, opts);
    ASSERT_TRUE(row.result.sorted) << c.spec.ToString();
    const double slack = 4.0 * c.spec.d * (c.spec.n / c.g);
    EXPECT_LE(static_cast<double>(row.result.routing_steps),
              1.5 * static_cast<double>(row.diameter) + slack)
        << c.spec.ToString();
  }
}

TEST(PaperClaimsTest, TwoPhaseRoutingWithinClaimPlusBlockSlack) {
  // Theorem 5.1: <= D + n + O(b) on every permutation tested.
  for (const char* perm : {"random", "reversal", "transpose"}) {
    TwoPhaseOptions opts;
    opts.g = 8;
    opts.seed = 99;
    RoutingRow row = RunRoutingExperiment({2, 128, Wrap::kMesh}, perm, opts);
    ASSERT_TRUE(row.two_phase.delivered) << perm;
    const double slack = 4.0 * 2 * (128 / 8);
    EXPECT_LE(static_cast<double>(row.two_phase.total_steps),
              static_cast<double>(row.diameter) + 128.0 + slack)
        << perm;
  }
}

TEST(PaperClaimsTest, Lemma34SurvivorDistanceIsExactlyHalfD) {
  SortOptions opts;
  opts.g = 4;
  opts.seed = 777;
  SortRow row = RunSortExperiment(SortAlgo::kTorus, {2, 64, Wrap::kTorus}, opts);
  ASSERT_TRUE(row.result.sorted);
  for (const PhaseStats& phase : row.result.phases) {
    if (phase.name == "route-survivors") {
      EXPECT_EQ(phase.max_distance, row.diameter / 2);
    }
  }
}

TEST(PaperClaimsTest, Theorem42WitnessCrossesOneAtModerateD) {
  // Theorem 4.2 says the diameter cannot be matched for d >= 5. Our
  // conservative capacity form (entry rate d*S) certifies it from d = 6 —
  // the witness must be < 1 at d <= 4 and > 1 by d = 6 (documented
  // deviation: the paper's sharper per-network argument buys d = 5).
  EXPECT_LT(BestNoCopyBoundOverDAsymptotic(4), 1.0);
  EXPECT_LT(BestNoCopyBoundOverDAsymptotic(5), 1.0);  // just below: 0.99
  EXPECT_GT(BestNoCopyBoundOverDAsymptotic(5), 0.95);
  EXPECT_GT(BestNoCopyBoundOverDAsymptotic(6), 1.0);
  EXPECT_GT(BestNoCopyBoundOverDAsymptotic(8), 1.1);
}

TEST(PaperClaimsTest, FiniteSizeWitnessMonotoneInD) {
  double prev = 0.0;
  for (int d : {2, 3, 4, 6, 8}) {
    const double now = BestNoCopyBoundOverD(d, 33, 0.7);
    EXPECT_GE(now, prev) << "witness regressed at d=" << d;
    prev = now;
  }
}

TEST(PaperClaimsTest, SelectionOnTorusIsExact) {
  // Section 4.3: the torus admits (1 + eps) D selection for large d; at
  // simulable d we verify exactness and a sane ratio.
  SortOptions opts;
  opts.g = 4;
  opts.seed = 5;
  SelectRow row = RunSelectionExperiment({2, 32, Wrap::kTorus}, opts);
  EXPECT_TRUE(row.correct);
  EXPECT_LT(row.ratio, 2.5);
}

TEST(PaperClaimsTest, JokerZoneMovesFarPacketsDestination) {
  // The information-theoretic heart of Section 4: the content of a corner
  // block ("joker zone") of size ~n^(beta*d) decides where a packet on the
  // opposite side of the network must end up. Two inputs identical outside
  // the corner block force destinations a hyperplane apart.
  const int d = 2, n = 16, g = 4;  // corner block = 16 procs = N^(1/2)
  Topology topo(d, n, Wrap::kMesh);
  BlockGrid grid(topo, g);
  const std::int64_t B = grid.block_volume();
  const std::int64_t N = topo.size();

  // The watched packet: a middling key at the far corner (last block).
  const std::uint64_t watched_key = 1000;
  std::vector<std::uint64_t> low(static_cast<std::size_t>(N), 500);
  std::vector<std::uint64_t> high = low;
  // Everything gets a distinct filler below the watched key...
  for (std::size_t t = 0; t < low.size(); ++t) low[t] = high[t] = 2 * t;
  low.back() = high.back() = watched_key * 1000;  // far corner: huge key
  // ...except the joker zone (block 0 = the corner block in snake order):
  // `low` puts tiny keys there, `high` puts keys above the watched packet.
  for (std::int64_t i = 0; i < B; ++i) {
    low[static_cast<std::size_t>(i)] = 1;
    high[static_cast<std::size_t>(i)] = watched_key * 2000 + static_cast<std::uint64_t>(i);
  }

  auto dest_of_watched = [&](const std::vector<std::uint64_t>& keys) {
    Network net(topo);
    FillExplicit(net, grid, 1, keys);
    // Identify the watched packet's id: it sits at the last snake position.
    std::int64_t watched_id = N - 1;
    SortOptions opts;
    opts.g = g;
    SortResult r = RunSort(SortAlgo::kSimple, net, grid, opts);
    EXPECT_TRUE(r.sorted);
    ProcId where = -1;
    net.ForEach([&](ProcId p, const Packet& pkt) {
      if (pkt.id == watched_id) where = p;
    });
    return where;
  };

  const ProcId dest_low = dest_of_watched(low);
  const ProcId dest_high = dest_of_watched(high);
  ASSERT_GE(dest_low, 0);
  ASSERT_GE(dest_high, 0);
  // B keys moved from below to above the watched packet: its rank, and
  // hence its destination index, shifts by exactly B — at least a block
  // away in the network.
  EXPECT_NE(dest_low, dest_high);
  EXPECT_GE(topo.Dist(dest_low, dest_high), 1);
  const auto& indexing = grid.indexing();
  const std::int64_t idx_low = indexing.Index(topo.Coords(dest_low));
  const std::int64_t idx_high = indexing.Index(topo.Coords(dest_high));
  EXPECT_EQ(idx_low - idx_high, B);
}

}  // namespace
}  // namespace mdmesh
