#include "meshsim/blocks.h"

#include <gtest/gtest.h>

#include <set>
#include <tuple>

namespace mdmesh {
namespace {

class BlockGridTest
    : public ::testing::TestWithParam<std::tuple<int, int, int, Wrap>> {};

TEST_P(BlockGridTest, MappingsRoundTrip) {
  auto [d, n, g, wrap] = GetParam();
  Topology topo(d, n, wrap);
  BlockGrid grid(topo, g);
  EXPECT_EQ(grid.num_blocks() * grid.block_volume(), topo.size());
  std::set<std::pair<BlockId, std::int64_t>> seen;
  for (ProcId p = 0; p < topo.size(); ++p) {
    BlockId blk = grid.BlockOf(p);
    std::int64_t off = grid.OffsetOf(p);
    ASSERT_GE(blk, 0);
    ASSERT_LT(blk, grid.num_blocks());
    ASSERT_GE(off, 0);
    ASSERT_LT(off, grid.block_volume());
    EXPECT_EQ(grid.ProcAt(blk, off), p);
    EXPECT_TRUE(seen.insert({blk, off}).second);
  }
}

INSTANTIATE_TEST_SUITE_P(Grids, BlockGridTest,
                         ::testing::Values(std::tuple{2, 8, 2, Wrap::kMesh},
                                           std::tuple{2, 8, 4, Wrap::kMesh},
                                           std::tuple{2, 12, 2, Wrap::kTorus},
                                           std::tuple{3, 8, 2, Wrap::kMesh},
                                           std::tuple{3, 6, 2, Wrap::kTorus},
                                           std::tuple{4, 4, 2, Wrap::kMesh}));

TEST(BlockGridTest, RejectsNonDividingG) {
  Topology topo(2, 8, Wrap::kMesh);
  EXPECT_THROW(BlockGrid(topo, 3), std::invalid_argument);
}

TEST(BlockGridTest, BlockCoordsRoundTrip) {
  Topology topo(3, 8, Wrap::kMesh);
  BlockGrid grid(topo, 2);
  for (BlockId b = 0; b < grid.num_blocks(); ++b) {
    EXPECT_EQ(grid.BlockAtCoords(grid.BlockCoords(b)), b);
  }
}

TEST(BlockGridTest, BlockOfMatchesCoordinateArithmetic) {
  Topology topo(2, 8, Wrap::kMesh);
  BlockGrid grid(topo, 4);  // b = 2
  for (ProcId p = 0; p < topo.size(); ++p) {
    Point c = topo.Coords(p);
    Point bc = grid.BlockCoords(grid.BlockOf(p));
    for (int i = 0; i < 2; ++i) {
      EXPECT_EQ(bc[static_cast<std::size_t>(i)], c[static_cast<std::size_t>(i)] / 2);
    }
  }
}

TEST(BlockGridTest, WithinBlockOffsetsAreSnakeOrdered) {
  // Consecutive offsets inside a block are mesh neighbors.
  Topology topo(2, 8, Wrap::kMesh);
  BlockGrid grid(topo, 2);  // b = 4
  for (BlockId blk = 0; blk < grid.num_blocks(); ++blk) {
    for (std::int64_t off = 0; off + 1 < grid.block_volume(); ++off) {
      EXPECT_EQ(topo.Dist(grid.ProcAt(blk, off), grid.ProcAt(blk, off + 1)), 1);
    }
  }
}

TEST(BlockGridTest, SnakeAdjacentBlocksAreGridNeighbors) {
  Topology topo(3, 8, Wrap::kMesh);
  BlockGrid grid(topo, 2);
  for (BlockId b = 0; b + 1 < grid.num_blocks(); ++b) {
    Point x = grid.BlockCoords(b);
    Point y = grid.BlockCoords(b + 1);
    std::int64_t dist = 0;
    for (int i = 0; i < 3; ++i) {
      dist += AbsDiff(x[static_cast<std::size_t>(i)], y[static_cast<std::size_t>(i)]);
    }
    EXPECT_EQ(dist, 1);
  }
}

TEST(BlockGridTest, BlockCenterAndDistance) {
  Topology topo(2, 8, Wrap::kMesh);
  BlockGrid grid(topo, 2);  // blocks of side 4; centers at 1.5 and 5.5
  auto c0 = grid.BlockCenter(0);
  EXPECT_DOUBLE_EQ(c0[0], 1.5);
  EXPECT_DOUBLE_EQ(c0[1], 1.5);
  // Distance between diagonal blocks: |1.5-5.5| * 2 = 8.
  BlockId diag = -1;
  for (BlockId b = 0; b < grid.num_blocks(); ++b) {
    auto c = grid.BlockCenter(b);
    if (c[0] == 5.5 && c[1] == 5.5) diag = b;
  }
  ASSERT_GE(diag, 0);
  EXPECT_DOUBLE_EQ(grid.CenterDist(0, diag), 8.0);
}

TEST(BlockGridTest, TorusCenterDistWraps) {
  Topology topo(1, 8, Wrap::kTorus);
  BlockGrid grid(topo, 4);  // blocks of side 2, centers 0.5, 2.5, 4.5, 6.5
  BlockId first = grid.BlockOf(0);
  BlockId last = grid.BlockOf(7);
  EXPECT_DOUBLE_EQ(grid.CenterDist(first, last), 2.0);  // 0.5 vs 6.5 wraps
}

TEST(BlockGridTest, MaxProcDistMeshExact) {
  Topology topo(2, 8, Wrap::kMesh);
  BlockGrid grid(topo, 2);
  for (BlockId a = 0; a < grid.num_blocks(); ++a) {
    for (BlockId b = 0; b < grid.num_blocks(); ++b) {
      std::int64_t brute = 0;
      for (std::int64_t i = 0; i < grid.block_volume(); ++i) {
        for (std::int64_t j = 0; j < grid.block_volume(); ++j) {
          brute = std::max(brute, topo.Dist(grid.ProcAt(a, i), grid.ProcAt(b, j)));
        }
      }
      EXPECT_EQ(grid.MaxProcDist(a, b), brute) << "blocks " << a << "," << b;
    }
  }
}

TEST(BlockGridTest, MaxProcDistTorusExact) {
  Topology topo(2, 8, Wrap::kTorus);
  BlockGrid grid(topo, 2);
  for (BlockId a = 0; a < grid.num_blocks(); ++a) {
    for (BlockId b = 0; b < grid.num_blocks(); ++b) {
      std::int64_t brute = 0;
      for (std::int64_t i = 0; i < grid.block_volume(); ++i) {
        for (std::int64_t j = 0; j < grid.block_volume(); ++j) {
          brute = std::max(brute, topo.Dist(grid.ProcAt(a, i), grid.ProcAt(b, j)));
        }
      }
      EXPECT_EQ(grid.MaxProcDist(a, b), brute) << "blocks " << a << "," << b;
    }
  }
}

TEST(BlockGridTest, MirrorBlockInvolution) {
  Topology topo(3, 8, Wrap::kMesh);
  BlockGrid grid(topo, 2);
  for (BlockId b = 0; b < grid.num_blocks(); ++b) {
    EXPECT_EQ(grid.MirrorBlock(grid.MirrorBlock(b)), b);
    EXPECT_NE(grid.MirrorBlock(b), b);  // even g has no fixed blocks
  }
}

TEST(BlockGridTest, AntipodeBlockInvolution) {
  Topology topo(2, 8, Wrap::kTorus);
  BlockGrid grid(topo, 4);
  for (BlockId b = 0; b < grid.num_blocks(); ++b) {
    EXPECT_EQ(grid.AntipodeBlock(grid.AntipodeBlock(b)), b);
    EXPECT_NE(grid.AntipodeBlock(b), b);
  }
}

TEST(BlockGridTest, SnakeNeighborPairs) {
  Topology topo(2, 8, Wrap::kMesh);
  BlockGrid grid(topo, 4);  // 16 blocks
  auto even = grid.SnakeNeighborPairs(0);
  auto odd = grid.SnakeNeighborPairs(1);
  EXPECT_EQ(even.size(), 8u);
  EXPECT_EQ(odd.size(), 7u);
  for (auto [l, r] : even) EXPECT_EQ(r, l + 1);
  EXPECT_EQ(even[0].first, 0);
  EXPECT_EQ(odd[0].first, 1);
}

}  // namespace
}  // namespace mdmesh
