#include "net/metrics.h"

#include <gtest/gtest.h>

#include "net/engine.h"
#include "routing/permutations.h"
#include "util/rng.h"

namespace mdmesh {
namespace {

TEST(MetricsTest, AccumulateCombinesPhases) {
  RouteResult a, b;
  a.steps = 10;
  a.moves = 100;
  a.max_queue = 3;
  a.packets = 50;
  a.max_distance = 9;
  a.max_overshoot = 1;
  b.steps = 20;
  b.moves = 300;
  b.max_queue = 5;
  b.packets = 50;
  b.max_distance = 12;
  b.max_overshoot = 4;
  b.completed = false;
  a.Accumulate(b);
  EXPECT_EQ(a.steps, 30);
  EXPECT_EQ(a.moves, 400);
  EXPECT_EQ(a.max_queue, 5);
  EXPECT_EQ(a.max_distance, 12);
  EXPECT_EQ(a.max_overshoot, 4);
  EXPECT_FALSE(a.completed);
}

TEST(MetricsTest, ToStringMentionsKeyFields) {
  RouteResult r;
  r.steps = 7;
  r.completed = false;
  std::string s = r.ToString();
  EXPECT_NE(s.find("steps=7"), std::string::npos);
  EXPECT_NE(s.find("INCOMPLETE"), std::string::npos);
}

TEST(MetricsTest, LinkCountsAreExact) {
  // Mesh: 2 * (n-1) * n^(d-1) directed links per dimension.
  Topology mesh(2, 4, Wrap::kMesh);
  Engine engine(mesh);
  Network net(mesh);
  Packet pkt;
  pkt.dest = 1;
  net.Add(0, pkt);
  RouteResult r = engine.Route(net);
  EXPECT_EQ(r.links, 2 * 2 * (4 - 1) * 4);  // 48

  Topology torus(2, 4, Wrap::kTorus);
  Engine tengine(torus);
  Network tnet(torus);
  tnet.Add(0, pkt);
  RouteResult tr = tengine.Route(tnet);
  EXPECT_EQ(tr.links, 2 * 2 * 16);  // 64
}

TEST(MetricsTest, LinkUtilizationBounds) {
  Topology topo(2, 8, Wrap::kMesh);
  Engine engine(topo);
  Network net(topo);
  Rng rng(3);
  auto dest = RandomPermutation(topo, rng);
  for (ProcId p = 0; p < topo.size(); ++p) {
    Packet pkt;
    pkt.id = p;
    pkt.dest = dest[static_cast<std::size_t>(p)];
    net.Add(p, pkt);
  }
  RouteResult r = engine.Route(net);
  ASSERT_TRUE(r.completed);
  EXPECT_GT(r.LinkUtilization(), 0.0);
  EXPECT_LE(r.LinkUtilization(), 1.0);
}

TEST(MetricsTest, UtilizationZeroWhenNothingMoves) {
  RouteResult r;
  EXPECT_EQ(r.LinkUtilization(), 0.0);
}

TEST(MetricsTest, UtilizationGuardsDegenerateCounters) {
  // Any non-positive factor of the capacity must short-circuit to 0 rather
  // than divide by zero or return a negative fraction.
  RouteResult r;
  r.moves = 100;
  r.steps = 0;
  r.links = 48;
  EXPECT_EQ(r.LinkUtilization(), 0.0);
  r.steps = 10;
  r.links = 0;
  EXPECT_EQ(r.LinkUtilization(), 0.0);
  r.links = 48;
  r.moves = -5;
  EXPECT_EQ(r.LinkUtilization(), 0.0);
}

TEST(MetricsTest, UtilizationDoesNotOverflowOrExceedOne) {
  RouteResult r;
  // steps * links would overflow int64 if formed as an integer product.
  r.steps = INT64_C(4) << 40;
  r.links = INT64_C(4) << 40;
  r.moves = 1;
  const double util = r.LinkUtilization();
  EXPECT_GT(util, 0.0);
  EXPECT_LT(util, 1e-20);
  // Inconsistent counters (moves beyond capacity) clamp to 1.
  r.steps = 2;
  r.links = 3;
  r.moves = 1000;
  EXPECT_EQ(r.LinkUtilization(), 1.0);
}

TEST(MetricsTest, ToJsonSerializesEveryField) {
  RouteResult r;
  r.steps = 12;
  r.moves = 240;
  r.max_queue = 4;
  r.packets = 64;
  r.links = 48;
  r.max_distance = 9;
  r.max_overshoot = 3;
  r.completed = false;
  const std::string json = r.ToJson();
  EXPECT_NE(json.find("\"steps\":12"), std::string::npos) << json;
  EXPECT_NE(json.find("\"moves\":240"), std::string::npos);
  EXPECT_NE(json.find("\"max_queue\":4"), std::string::npos);
  EXPECT_NE(json.find("\"packets\":64"), std::string::npos);
  EXPECT_NE(json.find("\"links\":48"), std::string::npos);
  EXPECT_NE(json.find("\"completed\":false"), std::string::npos);
  EXPECT_NE(json.find("\"link_utilization\":"), std::string::npos);
  EXPECT_NE(json.find("\"max_distance\":9"), std::string::npos);
  EXPECT_NE(json.find("\"max_overshoot\":3"), std::string::npos);
  EXPECT_NE(json.find("\"overshoot_mean\":0"), std::string::npos);
  EXPECT_NE(json.find("\"peak_active_procs\":"), std::string::npos);
}

TEST(MetricsTest, ToJsonMatchesMeasuredRun) {
  Topology topo(2, 4, Wrap::kMesh);
  Engine engine(topo);
  Network net(topo);
  Packet pkt;
  pkt.dest = 5;
  net.Add(0, pkt);
  RouteResult r = engine.Route(net);
  const std::string json = r.ToJson();
  EXPECT_NE(json.find("\"steps\":" + std::to_string(r.steps)),
            std::string::npos);
  EXPECT_NE(json.find("\"completed\":true"), std::string::npos);
}

TEST(MetricsTest, ObserverSeesEveryStep) {
  Topology topo(1, 8, Wrap::kMesh);
  EngineOptions opts;
  std::int64_t calls = 0;
  std::int64_t total_arrivals = 0;
  std::int64_t last_in_flight = -1;
  opts.observer = [&](std::int64_t step, std::int64_t in_flight,
                      std::int64_t arrivals) {
    ++calls;
    EXPECT_EQ(step, calls);
    total_arrivals += arrivals;
    last_in_flight = in_flight;
  };
  Engine engine(topo, opts);
  Network net(topo);
  Packet pkt;
  pkt.dest = 7;
  net.Add(0, pkt);
  RouteResult r = engine.Route(net);
  EXPECT_EQ(calls, r.steps);
  EXPECT_EQ(total_arrivals, 1);
  EXPECT_EQ(last_in_flight, 0);
}

TEST(MetricsTest, ObserverInFlightIsMonotoneForPermutations) {
  Topology topo(2, 8, Wrap::kMesh);
  EngineOptions opts;
  std::int64_t prev = topo.size() + 1;
  bool monotone = true;
  opts.observer = [&](std::int64_t, std::int64_t in_flight, std::int64_t) {
    if (in_flight > prev) monotone = false;
    prev = in_flight;
  };
  Engine engine(topo, opts);
  Network net(topo);
  Rng rng(4);
  auto dest = RandomPermutation(topo, rng);
  for (ProcId p = 0; p < topo.size(); ++p) {
    Packet pkt;
    pkt.id = p;
    pkt.dest = dest[static_cast<std::size_t>(p)];
    net.Add(p, pkt);
  }
  engine.Route(net);
  EXPECT_TRUE(monotone);  // arrivals only remove packets from flight
}

}  // namespace
}  // namespace mdmesh
