#include "util/table.h"

#include <gtest/gtest.h>

namespace mdmesh {
namespace {

TEST(TableTest, RendersHeaderAndRows) {
  Table t({"name", "value"});
  t.Row().Cell("alpha").Cell(std::int64_t{42});
  t.Row().Cell("beta").Cell(3.14159, 2);
  std::string s = t.ToString();
  EXPECT_NE(s.find("name"), std::string::npos);
  EXPECT_NE(s.find("alpha"), std::string::npos);
  EXPECT_NE(s.find("42"), std::string::npos);
  EXPECT_NE(s.find("3.14"), std::string::npos);
  EXPECT_EQ(t.rows(), 2u);
}

TEST(TableTest, ColumnsAligned) {
  Table t({"a", "b"});
  t.Row().Cell("xxxxxxxx").Cell("1");
  t.Row().Cell("y").Cell("2");
  std::string s = t.ToString();
  // Every line has the same length (uniform padding).
  std::size_t prev = std::string::npos;
  std::size_t start = 0;
  while (start < s.size()) {
    std::size_t end = s.find('\n', start);
    if (end == std::string::npos) break;
    std::size_t len = end - start;
    if (prev != std::string::npos) {
      EXPECT_EQ(len, prev);
    }
    prev = len;
    start = end + 1;
  }
}

TEST(TableTest, DoublePrecisionControl) {
  Table t({"x"});
  t.Row().Cell(1.0 / 3.0, 5);
  EXPECT_NE(t.ToString().find("0.33333"), std::string::npos);
}

TEST(TableTest, EmptyTableStillRendersHeader) {
  Table t({"only"});
  std::string s = t.ToString();
  EXPECT_NE(s.find("only"), std::string::npos);
  EXPECT_EQ(t.rows(), 0u);
}


TEST(TableTest, CsvOutput) {
  Table t({"name", "value"});
  t.Row().Cell("plain").Cell(std::int64_t{1});
  t.Row().Cell("with,comma").Cell("with\"quote");
  const std::string csv = t.ToCsv();
  EXPECT_NE(csv.find("name,value\n"), std::string::npos);
  EXPECT_NE(csv.find("plain,1\n"), std::string::npos);
  EXPECT_NE(csv.find("\"with,comma\""), std::string::npos);
  EXPECT_NE(csv.find("\"with\"\"quote\""), std::string::npos);
}

}  // namespace
}  // namespace mdmesh
