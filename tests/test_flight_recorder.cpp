#include "obs/flight_recorder.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <unistd.h>

#include "fault/fault_plan.h"
#include "net/engine.h"
#include "net/network.h"
#include "util/rng.h"

namespace mdmesh {
namespace {

Packet MakePacket(std::int64_t id, ProcId dest, std::uint16_t klass = 0) {
  Packet pkt;
  pkt.id = id;
  pkt.key = static_cast<std::uint64_t>(id);
  pkt.dest = dest;
  pkt.klass = klass;
  return pkt;
}

FlightRecord MakeRecord(std::int64_t step) {
  FlightRecord rec;
  rec.step = step;
  rec.in_flight = 100 - step;
  rec.moves = step * 2;
  return rec;
}

std::string TempPath(const char* stem) {
  const char* dir = std::getenv("TMPDIR");
  std::ostringstream os;
  os << (dir != nullptr ? dir : "/tmp") << "/" << stem << "_" << ::getpid()
     << ".json";
  return os.str();
}

// ---------------------------------------------------------------------------
// Ring semantics.

TEST(FlightRecorderTest, RetainsEverythingBelowCapacity) {
  FlightRecorder rec(8);
  for (std::int64_t s = 1; s <= 5; ++s) rec.Append(MakeRecord(s));
  EXPECT_EQ(rec.size(), 5u);
  EXPECT_EQ(rec.total_records(), 5);
  EXPECT_EQ(rec.dropped(), 0);
  EXPECT_EQ(rec.Last().step, 5);
  const auto tail = rec.Tail(3);
  ASSERT_EQ(tail.size(), 3u);
  EXPECT_EQ(tail[0].step, 3);
  EXPECT_EQ(tail[2].step, 5);
}

TEST(FlightRecorderTest, WrapsAndCountsDropped) {
  FlightRecorder rec(4);
  for (std::int64_t s = 1; s <= 10; ++s) rec.Append(MakeRecord(s));
  EXPECT_EQ(rec.size(), 4u);
  EXPECT_EQ(rec.total_records(), 10);
  EXPECT_EQ(rec.dropped(), 6);
  EXPECT_EQ(rec.Last().step, 10);
  // The retained window is the most recent 4 records, oldest first.
  const auto tail = rec.Tail(99);
  ASSERT_EQ(tail.size(), 4u);
  EXPECT_EQ(tail[0].step, 7);
  EXPECT_EQ(tail[1].step, 8);
  EXPECT_EQ(tail[2].step, 9);
  EXPECT_EQ(tail[3].step, 10);
}

TEST(FlightRecorderTest, ClearResetsButKeepsCapacity) {
  FlightRecorder rec(4);
  for (std::int64_t s = 1; s <= 6; ++s) rec.Append(MakeRecord(s));
  rec.Clear();
  EXPECT_EQ(rec.size(), 0u);
  EXPECT_EQ(rec.total_records(), 0);
  EXPECT_EQ(rec.capacity(), 4u);
  rec.Append(MakeRecord(42));
  EXPECT_EQ(rec.Last().step, 42);
}

TEST(FlightRecorderTest, JsonCarriesManifestReasonAndRecords) {
  FlightRecorder rec(16);
  RunManifest m;
  m.seed = 1234;
  rec.set_manifest(m);
  for (std::int64_t s = 1; s <= 3; ++s) rec.Append(MakeRecord(s));
  const std::string json = rec.ToJson("watchdog");
  EXPECT_NE(json.find("\"manifest\""), std::string::npos);
  EXPECT_NE(json.find("\"reason\":\"watchdog\""), std::string::npos);
  EXPECT_NE(json.find("\"step\":3"), std::string::npos);
  EXPECT_NE(json.find("\"records\":["), std::string::npos);
  EXPECT_NE(json.find("\"dropped\":0"), std::string::npos);
}

TEST(FlightRecorderTest, DumpWritesAtomicallyAndReportsFailure) {
  FlightRecorder rec(4);
  rec.Append(MakeRecord(1));
  // No path set: refused, not crashed.
  EXPECT_FALSE(rec.Dump("step_cap"));
  const std::string path = TempPath("flight_dump");
  rec.set_dump_path(path);
  EXPECT_TRUE(rec.Dump("step_cap"));
  // The temp staging file must be gone (renamed into place).
  std::ifstream tmp(path + ".tmp");
  EXPECT_FALSE(tmp.good());
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::stringstream body;
  body << in.rdbuf();
  EXPECT_NE(body.str().find("\"reason\": \"step_cap\""), std::string::npos);
  std::remove(path.c_str());
  // Unwritable directory: refused, not crashed.
  rec.set_dump_path("/nonexistent_dir_mdmesh/x.json");
  EXPECT_FALSE(rec.Dump("step_cap"));
}

// ---------------------------------------------------------------------------
// Engine integration: abort paths dump the black box and StallReport embeds
// the tail.

TEST(FlightRecorderEngineTest, WatchdogStallDumpMatchesStallReportStep) {
  // Deadlocked node (every outgoing link dead) — the watchdog aborts, the
  // artifact lands on disk, and its last record is the abort step.
  Topology topo(1, 4, Wrap::kMesh);
  FaultPlan plan(topo);
  plan.KillLink(1, 0, 0);
  plan.KillLink(1, 0, 1);
  FlightRecorder recorder(128);
  const std::string path = TempPath("flight_watchdog");
  recorder.set_dump_path(path);
  EngineOptions opts;
  opts.faults = &plan;
  opts.step_cap = 1000000;
  opts.stall_window = 10;
  opts.invariants = InvariantMode::kOff;
  opts.recorder = &recorder;
  Engine engine(topo, opts);
  Network net(topo);
  net.Add(1, MakePacket(77, 3));
  RouteResult r = engine.Route(net);
  EXPECT_FALSE(r.completed);
  ASSERT_NE(r.stall_report, nullptr);
  EXPECT_EQ(r.stall_report->reason, StallReason::kWatchdog);

  // Acceptance pin: the artifact's last record matches the StallReport step.
  EXPECT_EQ(recorder.Last().step, r.stall_report->step);
  EXPECT_EQ(recorder.Last().in_flight, 1);
  EXPECT_EQ(recorder.Last().moves, 0);

  // The report itself embeds the tail (oldest first, ending at the abort).
  ASSERT_FALSE(r.stall_report->recent.empty());
  EXPECT_EQ(r.stall_report->recent.back().step, r.stall_report->step);
  EXPECT_LE(r.stall_report->recent.size(), StallReport::kRecentCap);
  // And the report's JSON carries it.
  std::ostringstream os;
  JsonWriter w(os);
  r.stall_report->WriteJson(w);
  EXPECT_NE(os.str().find("\"recent\""), std::string::npos);

  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::stringstream body;
  body << in.rdbuf();
  EXPECT_NE(body.str().find("\"reason\": \"watchdog\""), std::string::npos);
  std::remove(path.c_str());
}

TEST(FlightRecorderEngineTest, StepCapAbortAlsoDumps) {
  Topology topo(1, 4, Wrap::kMesh);
  FaultPlan plan(topo);
  plan.KillLink(1, 0, 0);
  plan.KillLink(1, 0, 1);
  FlightRecorder recorder(8);  // smaller than the 30-step run: must wrap
  const std::string path = TempPath("flight_stepcap");
  recorder.set_dump_path(path);
  EngineOptions opts;
  opts.faults = &plan;
  opts.step_cap = 30;
  opts.stall_window = -1;
  opts.invariants = InvariantMode::kOff;
  opts.recorder = &recorder;
  Engine engine(topo, opts);
  Network net(topo);
  net.Add(1, MakePacket(0, 3));
  RouteResult r = engine.Route(net);
  EXPECT_FALSE(r.completed);
  ASSERT_NE(r.stall_report, nullptr);
  EXPECT_EQ(r.stall_report->reason, StallReason::kStepCap);
  EXPECT_EQ(recorder.Last().step, 30);
  EXPECT_EQ(recorder.dropped(), 30 - 8);
  // The embedded tail is capacity-bounded, not kRecentCap-bounded, when the
  // ring is smaller.
  EXPECT_EQ(r.stall_report->recent.size(), 8u);
  std::ifstream in(path);
  EXPECT_TRUE(in.good());
  std::remove(path.c_str());
}

TEST(FlightRecorderEngineTest, InterruptAbortsWithReasonAndClearsFlag) {
  // Drive the flag directly (tests must not raise real signals); the engine
  // polls it per step, aborts with kInterrupt, and consumes the flag.
  Topology topo(2, 8, Wrap::kMesh);
  FlightRecorder recorder(64);
  EngineOptions opts;
  opts.recorder = &recorder;
  opts.invariants = InvariantMode::kOff;
  Engine engine(topo, opts);
  Network net(topo);
  Rng rng(7);
  const auto perm = rng.Permutation(topo.size());
  for (ProcId p = 0; p < topo.size(); ++p) {
    net.Add(p, MakePacket(p, static_cast<ProcId>(perm[static_cast<std::size_t>(p)])));
  }
  FlightRecorder::RequestInterrupt();
  RouteResult r = engine.Route(net);
  EXPECT_FALSE(r.completed);
  ASSERT_NE(r.stall_report, nullptr);
  EXPECT_EQ(r.stall_report->reason, StallReason::kInterrupt);
  EXPECT_EQ(r.steps, 1);  // polled at the first step boundary
  EXPECT_FALSE(FlightRecorder::InterruptRequested());  // consumed

  // With the flag consumed, a rerun completes normally.
  Network net2(topo);
  for (ProcId p = 0; p < topo.size(); ++p) {
    net2.Add(p, MakePacket(p, static_cast<ProcId>(perm[static_cast<std::size_t>(p)])));
  }
  RouteResult r2 = engine.Route(net2);
  EXPECT_TRUE(r2.completed);
}

TEST(FlightRecorderEngineTest, RecordsCarryPerDimMovesAndCongestion) {
  // A clean 2D permutation run: every step lands in the ring with per-dim
  // move counters summing to the step's total moves.
  Topology topo(2, 6, Wrap::kMesh);
  FlightRecorder recorder(4096);
  EngineOptions opts;
  opts.recorder = &recorder;
  opts.invariants = InvariantMode::kOff;
  Engine engine(topo, opts);
  Network net(topo);
  Rng rng(11);
  const auto perm = rng.Permutation(topo.size());
  for (ProcId p = 0; p < topo.size(); ++p) {
    net.Add(p, MakePacket(p, static_cast<ProcId>(perm[static_cast<std::size_t>(p)])));
  }
  RouteResult r = engine.Route(net);
  ASSERT_TRUE(r.completed);
  ASSERT_EQ(recorder.total_records(), r.steps);
  std::int64_t moves = 0;
  std::int64_t arrivals = 0;
  for (const FlightRecord& rec : recorder.Tail(recorder.size())) {
    EXPECT_EQ(rec.dims, 2);
    std::int64_t dir_sum = 0;
    for (int i = 0; i < 2 * rec.dims; ++i) dir_sum += rec.dir_moves[i];
    EXPECT_EQ(dir_sum, rec.moves);
    moves += rec.moves;
    arrivals += rec.arrivals;
  }
  EXPECT_EQ(moves, r.moves);
  // Packets born on their destination (fixed points of the permutation)
  // retire before the first step, so they never appear in the per-step
  // arrival counters.
  std::int64_t fixed = 0;
  for (ProcId p = 0; p < topo.size(); ++p) {
    if (perm[static_cast<std::size_t>(p)] == p) ++fixed;
  }
  EXPECT_EQ(arrivals + fixed, r.packets);
  // Completed runs leave no stall report and dump nothing.
  EXPECT_EQ(r.stall_report, nullptr);
  EXPECT_EQ(recorder.Last().in_flight, 0);
}

TEST(FlightRecorderEngineTest, RecorderDoesNotChangeRouting) {
  // Same permutation with and without a recorder: identical step counts,
  // moves, and final placement fingerprints.
  Topology topo(2, 8, Wrap::kTorus);
  Rng rng(3);
  const auto perm = rng.Permutation(topo.size());
  const auto run = [&](FlightRecorder* rec) {
    EngineOptions opts;
    opts.recorder = rec;
    opts.invariants = InvariantMode::kOff;
    Engine engine(topo, opts);
    Network net(topo);
    for (ProcId p = 0; p < topo.size(); ++p) {
      net.Add(p, MakePacket(p, static_cast<ProcId>(perm[static_cast<std::size_t>(p)])));
    }
    RouteResult r = engine.Route(net);
    std::ostringstream fp;
    for (ProcId p = 0; p < topo.size(); ++p) {
      for (const Packet& pkt : net.At(p)) {
        fp << p << ':' << pkt.id << ':' << pkt.arrived << ';';
      }
    }
    return std::make_tuple(r.steps, r.moves, r.max_queue, fp.str());
  };
  FlightRecorder recorder(256);
  EXPECT_EQ(run(nullptr), run(&recorder));
}

}  // namespace
}  // namespace mdmesh
