// Cross-module integration tests: whole-pipeline properties that no single
// module test covers.
#include <gtest/gtest.h>

#include "core/mdmesh.h"

namespace mdmesh {
namespace {

TEST(IntegrationTest, AllFourAlgorithmsSortTheSameInput) {
  // Same keys through SimpleSort, CopySort, FullSort (mesh) and TorusSort,
  // FullSort (torus): identical final placement (sorting is a function).
  const int d = 2, n = 16, g = 2;
  std::vector<std::uint64_t> keys;
  Rng rng(1234);
  for (int t = 0; t < n * n; ++t) keys.push_back(rng.Next() % 1000);

  auto final_keys = [&](SortAlgo algo, Wrap wrap) {
    Topology topo(d, n, wrap);
    BlockGrid grid(topo, g);
    Network net(topo);
    FillExplicit(net, grid, 1, keys);
    SortOptions opts;
    opts.g = g;
    SortResult r = RunSort(algo, net, grid, opts);
    EXPECT_TRUE(r.sorted) << SortAlgoName(algo);
    std::vector<std::uint64_t> out;
    for (BlockId b = 0; b < grid.num_blocks(); ++b) {
      for (std::int64_t off = 0; off < grid.block_volume(); ++off) {
        out.push_back(net.At(grid.ProcAt(b, off))[0].key);
      }
    }
    return out;
  };

  auto simple = final_keys(SortAlgo::kSimple, Wrap::kMesh);
  auto copy = final_keys(SortAlgo::kCopy, Wrap::kMesh);
  auto full = final_keys(SortAlgo::kFull, Wrap::kMesh);
  auto torus = final_keys(SortAlgo::kTorus, Wrap::kTorus);
  EXPECT_EQ(simple, copy);
  EXPECT_EQ(simple, full);
  EXPECT_EQ(simple, torus);
}

TEST(IntegrationTest, SortThenRouteBackRestoresInput) {
  // Sort, then route every packet back to where it started: a full loop
  // exercising sorting + explicit permutation routing on the same network.
  Topology topo(2, 8, Wrap::kMesh);
  BlockGrid grid(topo, 2);
  Network net(topo);
  FillInput(net, grid, 1, InputKind::kRandom, 555);

  std::vector<ProcId> origin(static_cast<std::size_t>(topo.size()));
  net.ForEach([&](ProcId p, const Packet& pkt) {
    origin[static_cast<std::size_t>(pkt.id)] = p;
  });

  SortOptions opts;
  opts.g = 2;
  SortResult sorted = RunSort(SortAlgo::kSimple, net, grid, opts);
  ASSERT_TRUE(sorted.sorted);

  net.ForEach([&](ProcId, Packet& pkt) {
    pkt.dest = origin[static_cast<std::size_t>(pkt.id)];
    pkt.klass = 0;
  });
  Engine engine(topo);
  RouteResult back = engine.Route(net);
  ASSERT_TRUE(back.completed);
  net.ForEach([&](ProcId p, const Packet& pkt) {
    EXPECT_EQ(origin[static_cast<std::size_t>(pkt.id)], p);
  });
}

TEST(IntegrationTest, SortingRespectsTheBlockedSnakeIndexing) {
  // The packet of rank i must end at the processor whose blocked snake
  // index is i — cross-check against the BlockedIndexing directly.
  Topology topo(2, 8, Wrap::kMesh);
  BlockGrid grid(topo, 2);
  Network net(topo);
  FillInput(net, grid, 1, InputKind::kRandom, 777);
  GroundTruth truth = CaptureGroundTruth(net);
  SortOptions opts;
  opts.g = 2;
  SortResult r = RunSort(SortAlgo::kSimple, net, grid, opts);
  ASSERT_TRUE(r.sorted);
  const auto& indexing = grid.indexing();
  net.ForEach([&](ProcId p, const Packet& pkt) {
    const std::int64_t idx = indexing.Index(topo.Coords(p));
    EXPECT_EQ(truth[static_cast<std::size_t>(idx)].first, pkt.key);
    EXPECT_EQ(truth[static_cast<std::size_t>(idx)].second, pkt.id);
  });
}

TEST(IntegrationTest, LowerBoundNeverExceedsMeasuredUpperBound) {
  // Internal consistency of the reproduction: the Section 4 lower bound
  // evaluated at our simulated sizes must stay below the measured SimpleSort
  // step count (otherwise either the bound or the simulation is wrong).
  const MeshSpec spec{3, 8, Wrap::kMesh};
  SortOptions opts;
  SortRow row = RunSortExperiment(SortAlgo::kSimple, spec, opts);
  ASSERT_TRUE(row.result.sorted);
  Lemma42Eval lb = EvalLemma42(spec.d, spec.n, 0.5, 0.7);
  if (lb.condition_holds) {
    EXPECT_LE(lb.bound_steps, static_cast<double>(row.result.routing_steps));
  }
}

TEST(IntegrationTest, CompatibilityOfTheIndexingWeSortWith) {
  // The lower bounds cover the indexing scheme the algorithms actually use.
  Topology topo(3, 8, Wrap::kMesh);
  BlockGrid grid(topo, 2);
  CompatibilityResult r = CheckCompatibility(topo, grid.indexing());
  EXPECT_TRUE(r.compatible);
}

TEST(IntegrationTest, SelectionAgreesWithSorting) {
  // The median found by SelectAtCenter equals the key at the middle index
  // after a full sort of the same input.
  const int d = 2, n = 16, g = 2;
  Topology topo(d, n, Wrap::kMesh);
  BlockGrid grid(topo, g);

  Network to_sort(topo);
  FillInput(to_sort, grid, 1, InputKind::kRandom, 999);
  SortOptions opts;
  opts.g = g;
  SortResult sorted = RunSort(SortAlgo::kSimple, to_sort, grid, opts);
  ASSERT_TRUE(sorted.sorted);
  const std::int64_t target = (topo.size() - 1) / 2;
  const ProcId median_proc = grid.ProcAt(target / grid.block_volume(),
                                         target % grid.block_volume());
  const std::uint64_t median_by_sort = to_sort.At(median_proc)[0].key;

  Network to_select(topo);
  FillInput(to_select, grid, 1, InputKind::kRandom, 999);
  SelectResult sel = SelectAtCenter(to_select, grid, opts, target);
  ASSERT_TRUE(sel.found);
  EXPECT_EQ(sel.selected_key, median_by_sort);
}

TEST(IntegrationTest, TwoPhaseBeatsGreedyOnTranspose) {
  // The structured worst case for dimension-order greedy: transpose funnels
  // n packets through single links, while the Section 5 router spreads them.
  const MeshSpec spec{2, 32, Wrap::kMesh};
  TwoPhaseOptions opts;
  opts.g = 4;
  RoutingRow row = RunRoutingExperiment(spec, "transpose", opts);
  ASSERT_TRUE(row.two_phase.delivered);
  ASSERT_TRUE(row.baseline.route.completed);
  EXPECT_LT(row.two_phase.total_steps, row.baseline.route.steps * 2);
}

}  // namespace
}  // namespace mdmesh
