#include "sorting/torus_sort.h"

#include <gtest/gtest.h>

#include "sorting/kk_sort.h"

namespace mdmesh {
namespace {

struct Case {
  int d;
  int n;
  int g;
  InputKind input;
};

class TorusSortTest : public ::testing::TestWithParam<Case> {};

TEST_P(TorusSortTest, SortsCorrectly) {
  const Case c = GetParam();
  Topology topo(c.d, c.n, Wrap::kTorus);
  BlockGrid grid(topo, c.g);
  Network net(topo);
  FillInput(net, grid, 1, c.input, 81);
  SortOptions opts;
  opts.g = c.g;
  SortResult result = RunSort(SortAlgo::kTorus, net, grid, opts);
  EXPECT_TRUE(result.sorted) << result.Summary(topo.Diameter());
  EXPECT_TRUE(result.completed);
  if (grid.num_blocks() * grid.num_blocks() <= 2 * grid.block_volume()) {
    EXPECT_LE(result.fixup_rounds, 2) << result.Summary(topo.Diameter());
  }
}

INSTANTIATE_TEST_SUITE_P(
    Cases, TorusSortTest,
    ::testing::Values(Case{2, 8, 2, InputKind::kRandom},
                      Case{2, 16, 2, InputKind::kRandom},
                      Case{2, 16, 4, InputKind::kRandom},
                      Case{2, 16, 2, InputKind::kSortedAsc},
                      Case{2, 16, 2, InputKind::kSortedDesc},
                      Case{2, 16, 2, InputKind::kAllEqual},
                      Case{2, 16, 2, InputKind::kFewValues},
                      Case{3, 8, 2, InputKind::kRandom},
                      Case{3, 16, 2, InputKind::kRandom},
                      Case{4, 8, 2, InputKind::kRandom}));

TEST(TorusSortTest, RequiresTorus) {
  Topology topo(2, 8, Wrap::kMesh);
  BlockGrid grid(topo, 2);
  Network net(topo);
  FillInput(net, grid, 1, InputKind::kRandom, 83);
  SortOptions opts;
  opts.g = 2;
  EXPECT_THROW(TorusSortRun(net, grid, opts), std::invalid_argument);
}

TEST(TorusSortTest, SurvivorPhaseWithinHalfDiameterPlusSlack) {
  // Lemma 3.4 is exact for the antipodal copy: survivors travel <= D/2 + O(b).
  Topology topo(2, 32, Wrap::kTorus);
  BlockGrid grid(topo, 4);
  Network net(topo);
  FillInput(net, grid, 1, InputKind::kRandom, 87);
  SortOptions opts;
  opts.g = 4;
  SortResult result = RunSort(SortAlgo::kTorus, net, grid, opts);
  ASSERT_TRUE(result.sorted);
  const PhaseStats* survivors = nullptr;
  for (const auto& phase : result.phases) {
    if (phase.name == "route-survivors") survivors = &phase;
  }
  ASSERT_NE(survivors, nullptr);
  EXPECT_LE(survivors->max_distance,
            topo.Diameter() / 2 + 4 * grid.block_side());
}

TEST(TorusSortTest, PacketCountPreservedThroughDedup) {
  Topology topo(2, 16, Wrap::kTorus);
  BlockGrid grid(topo, 2);
  Network net(topo);
  FillInput(net, grid, 1, InputKind::kRandom, 89);
  const std::int64_t before = net.TotalPackets();
  SortOptions opts;
  opts.g = 2;
  SortResult result = RunSort(SortAlgo::kTorus, net, grid, opts);
  ASSERT_TRUE(result.sorted);
  EXPECT_EQ(net.TotalPackets(), before);
}

TEST(TorusSortTest, BeatsFullSortBaselineOnTorus) {
  // Theorem 3.3: 3D/2 vs the 2D baseline.
  Topology topo(2, 32, Wrap::kTorus);
  BlockGrid grid(topo, 4);
  SortOptions opts;
  opts.g = 4;

  Network a(topo);
  FillInput(a, grid, 1, InputKind::kRandom, 91);
  SortResult torus = RunSort(SortAlgo::kTorus, a, grid, opts);

  Network b(topo);
  FillInput(b, grid, 1, InputKind::kRandom, 91);
  SortResult full = RunSort(SortAlgo::kFull, b, grid, opts);

  ASSERT_TRUE(torus.sorted);
  ASSERT_TRUE(full.sorted);
  EXPECT_LT(torus.routing_steps, full.routing_steps);
}

TEST(TorusSortTest, DeterministicGivenSeed) {
  Topology topo(2, 8, Wrap::kTorus);
  BlockGrid grid(topo, 2);
  SortOptions opts;
  opts.g = 2;
  auto run = [&] {
    Network net(topo);
    FillInput(net, grid, 1, InputKind::kRandom, 93);
    return RunSort(SortAlgo::kTorus, net, grid, opts).routing_steps;
  };
  EXPECT_EQ(run(), run());
}

}  // namespace
}  // namespace mdmesh
