#include "util/cli.h"

#include <gtest/gtest.h>

namespace mdmesh {
namespace {

Cli MakeCli() {
  Cli cli("prog", "test program");
  cli.AddInt("n", 8, "side length");
  cli.AddString("algo", "simple", "algorithm");
  cli.AddBool("verbose", false, "chatty output");
  return cli;
}

TEST(CliTest, Defaults) {
  Cli cli = MakeCli();
  const char* argv[] = {"prog"};
  ASSERT_TRUE(cli.Parse(1, argv));
  EXPECT_EQ(cli.GetInt("n"), 8);
  EXPECT_EQ(cli.GetString("algo"), "simple");
  EXPECT_FALSE(cli.GetBool("verbose"));
}

TEST(CliTest, EqualsSyntax) {
  Cli cli = MakeCli();
  const char* argv[] = {"prog", "--n=32", "--algo=copy", "--verbose=1"};
  ASSERT_TRUE(cli.Parse(4, argv));
  EXPECT_EQ(cli.GetInt("n"), 32);
  EXPECT_EQ(cli.GetString("algo"), "copy");
  EXPECT_TRUE(cli.GetBool("verbose"));
}

TEST(CliTest, SpaceSyntax) {
  Cli cli = MakeCli();
  const char* argv[] = {"prog", "--n", "64", "--algo", "torus"};
  ASSERT_TRUE(cli.Parse(5, argv));
  EXPECT_EQ(cli.GetInt("n"), 64);
  EXPECT_EQ(cli.GetString("algo"), "torus");
}

TEST(CliTest, BareBoolFlag) {
  Cli cli = MakeCli();
  const char* argv[] = {"prog", "--verbose"};
  ASSERT_TRUE(cli.Parse(2, argv));
  EXPECT_TRUE(cli.GetBool("verbose"));
}

TEST(CliTest, UnknownFlagFails) {
  Cli cli = MakeCli();
  const char* argv[] = {"prog", "--bogus=1"};
  EXPECT_FALSE(cli.Parse(2, argv));
}

TEST(CliTest, MissingValueFails) {
  Cli cli = MakeCli();
  const char* argv[] = {"prog", "--n"};
  EXPECT_FALSE(cli.Parse(2, argv));
}

TEST(CliTest, HelpReturnsFalse) {
  Cli cli = MakeCli();
  const char* argv[] = {"prog", "--help"};
  EXPECT_FALSE(cli.Parse(2, argv));
}

TEST(CliTest, PositionalArgumentRejected) {
  Cli cli = MakeCli();
  const char* argv[] = {"prog", "stray"};
  EXPECT_FALSE(cli.Parse(2, argv));
}

TEST(CliTest, WrongTypeAccessThrows) {
  Cli cli = MakeCli();
  const char* argv[] = {"prog"};
  ASSERT_TRUE(cli.Parse(1, argv));
  EXPECT_THROW(cli.GetInt("algo"), std::logic_error);
  EXPECT_THROW(cli.GetString("n"), std::logic_error);
}

}  // namespace
}  // namespace mdmesh
