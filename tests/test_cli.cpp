#include "util/cli.h"

#include <gtest/gtest.h>

#include <cstring>
#include <string>
#include <vector>

#include "obs/output.h"

namespace mdmesh {
namespace {

Cli MakeCli() {
  Cli cli("prog", "test program");
  cli.AddInt("n", 8, "side length");
  cli.AddString("algo", "simple", "algorithm");
  cli.AddBool("verbose", false, "chatty output");
  return cli;
}

TEST(CliTest, Defaults) {
  Cli cli = MakeCli();
  const char* argv[] = {"prog"};
  ASSERT_TRUE(cli.Parse(1, argv));
  EXPECT_EQ(cli.GetInt("n"), 8);
  EXPECT_EQ(cli.GetString("algo"), "simple");
  EXPECT_FALSE(cli.GetBool("verbose"));
}

TEST(CliTest, EqualsSyntax) {
  Cli cli = MakeCli();
  const char* argv[] = {"prog", "--n=32", "--algo=copy", "--verbose=1"};
  ASSERT_TRUE(cli.Parse(4, argv));
  EXPECT_EQ(cli.GetInt("n"), 32);
  EXPECT_EQ(cli.GetString("algo"), "copy");
  EXPECT_TRUE(cli.GetBool("verbose"));
}

TEST(CliTest, SpaceSyntax) {
  Cli cli = MakeCli();
  const char* argv[] = {"prog", "--n", "64", "--algo", "torus"};
  ASSERT_TRUE(cli.Parse(5, argv));
  EXPECT_EQ(cli.GetInt("n"), 64);
  EXPECT_EQ(cli.GetString("algo"), "torus");
}

TEST(CliTest, BareBoolFlag) {
  Cli cli = MakeCli();
  const char* argv[] = {"prog", "--verbose"};
  ASSERT_TRUE(cli.Parse(2, argv));
  EXPECT_TRUE(cli.GetBool("verbose"));
}

TEST(CliTest, UnknownFlagFails) {
  Cli cli = MakeCli();
  const char* argv[] = {"prog", "--bogus=1"};
  EXPECT_FALSE(cli.Parse(2, argv));
}

TEST(CliTest, MissingValueFails) {
  Cli cli = MakeCli();
  const char* argv[] = {"prog", "--n"};
  EXPECT_FALSE(cli.Parse(2, argv));
}

TEST(CliTest, HelpReturnsFalse) {
  Cli cli = MakeCli();
  const char* argv[] = {"prog", "--help"};
  EXPECT_FALSE(cli.Parse(2, argv));
}

TEST(CliTest, PositionalArgumentRejected) {
  Cli cli = MakeCli();
  const char* argv[] = {"prog", "stray"};
  EXPECT_FALSE(cli.Parse(2, argv));
}

TEST(CliTest, WrongTypeAccessThrows) {
  Cli cli = MakeCli();
  const char* argv[] = {"prog"};
  ASSERT_TRUE(cli.Parse(1, argv));
  EXPECT_THROW(cli.GetInt("algo"), std::logic_error);
  EXPECT_THROW(cli.GetString("n"), std::logic_error);
}

TEST(CliTest, DashedRegistrationIsNormalized) {
  // Registering "--json" and reading back "json" (or vice versa) must refer
  // to the same flag — the registrar shouldn't care about the dash prefix.
  Cli cli("prog", "test program");
  cli.AddString("--json", "", "output path");
  cli.AddBool("--quick", false, "smallest config");
  const char* argv[] = {"prog", "--json=out.json", "--quick"};
  ASSERT_TRUE(cli.Parse(3, argv));
  EXPECT_EQ(cli.GetString("json"), "out.json");
  EXPECT_EQ(cli.GetString("--json"), "out.json");
  EXPECT_TRUE(cli.GetBool("quick"));
}

// ParseOutputFlags tests work on mutable argv copies, as main() would pass.
struct ArgvFixture {
  explicit ArgvFixture(std::vector<std::string> args) : storage(std::move(args)) {
    for (std::string& s : storage) argv.push_back(s.data());
    argc = static_cast<int>(argv.size());
  }
  std::vector<std::string> storage;
  std::vector<char*> argv;
  int argc = 0;
};

TEST(OutputFlagsTest, ParseExtractsAndCompactsArgv) {
  ArgvFixture fx({"prog", "--json=out.json", "--benchmark_filter=NONE",
                  "--trace-csv", "t.csv", "--quick"});
  OutputFlags flags = ParseOutputFlags(&fx.argc, fx.argv.data());
  EXPECT_EQ(flags.json, "out.json");
  EXPECT_EQ(flags.trace_csv, "t.csv");
  EXPECT_TRUE(flags.quick);
  EXPECT_TRUE(flags.WantsJson());
  EXPECT_TRUE(flags.WantsTrace());
  // Unrecognized flags survive for the downstream parser, in order.
  ASSERT_EQ(fx.argc, 2);
  EXPECT_STREQ(fx.argv[0], "prog");
  EXPECT_STREQ(fx.argv[1], "--benchmark_filter=NONE");
}

TEST(OutputFlagsTest, ParseLeavesUnrelatedArgvUntouched) {
  ArgvFixture fx({"prog", "--benchmark_list_tests", "positional"});
  OutputFlags flags = ParseOutputFlags(&fx.argc, fx.argv.data());
  EXPECT_FALSE(flags.WantsJson());
  EXPECT_FALSE(flags.WantsTrace());
  EXPECT_FALSE(flags.quick);
  ASSERT_EQ(fx.argc, 3);
  EXPECT_STREQ(fx.argv[1], "--benchmark_list_tests");
  EXPECT_STREQ(fx.argv[2], "positional");
}

TEST(OutputFlagsTest, RegisteredFlagsRoundTripThroughCli) {
  Cli cli("prog", "test program");
  AddOutputFlags(cli);
  const char* argv[] = {"prog", "--json=a.jsonl", "--trace-csv=b.csv",
                        "--perfetto=c.json", "--quick"};
  ASSERT_TRUE(cli.Parse(5, argv));
  OutputFlags flags = GetOutputFlags(cli);
  EXPECT_EQ(flags.json, "a.jsonl");
  EXPECT_EQ(flags.trace_csv, "b.csv");
  EXPECT_EQ(flags.perfetto, "c.json");
  EXPECT_TRUE(flags.WantsPerfetto());
  EXPECT_TRUE(flags.quick);
}

TEST(OutputFlagsTest, EveryValueFlagAcceptsEqualsAndSpaceForms) {
  // The three value flags share one parse table; both accepted forms must
  // behave identically for each of them.
  struct Case {
    const char* flag;
    std::string OutputFlags::* member;
  };
  const Case cases[] = {
      {"--json", &OutputFlags::json},
      {"--trace-csv", &OutputFlags::trace_csv},
      {"--perfetto", &OutputFlags::perfetto},
  };
  for (const Case& c : cases) {
    {
      ArgvFixture fx({"prog", std::string(c.flag) + "=out.path"});
      OutputFlags flags = ParseOutputFlags(&fx.argc, fx.argv.data());
      EXPECT_EQ(flags.*(c.member), "out.path") << c.flag << " (equals form)";
      EXPECT_EQ(fx.argc, 1) << c.flag;
    }
    {
      ArgvFixture fx({"prog", c.flag, "out.path"});
      OutputFlags flags = ParseOutputFlags(&fx.argc, fx.argv.data());
      EXPECT_EQ(flags.*(c.member), "out.path") << c.flag << " (space form)";
      EXPECT_EQ(fx.argc, 1) << c.flag;
    }
  }
}

TEST(OutputFlagsTest, PerfettoExtractsAndCompactsArgv) {
  ArgvFixture fx({"prog", "--perfetto", "t.json", "--benchmark_filter=NONE"});
  OutputFlags flags = ParseOutputFlags(&fx.argc, fx.argv.data());
  EXPECT_EQ(flags.perfetto, "t.json");
  EXPECT_TRUE(flags.WantsPerfetto());
  ASSERT_EQ(fx.argc, 2);
  EXPECT_STREQ(fx.argv[1], "--benchmark_filter=NONE");
}

TEST(OutputFlagsDeathTest, TrailingValueFlagExitsWithStatus2) {
  ArgvFixture fx({"prog", "--perfetto"});
  EXPECT_EXIT(ParseOutputFlags(&fx.argc, fx.argv.data()),
              ::testing::ExitedWithCode(2), "--perfetto requires a value");
}

}  // namespace
}  // namespace mdmesh
