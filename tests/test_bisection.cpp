#include "bounds/bisection.h"

#include <gtest/gtest.h>

namespace mdmesh {
namespace {

TEST(BisectionTest, WidthFormulas) {
  EXPECT_EQ(BisectionWidth(Topology(2, 8, Wrap::kMesh)), 8);
  EXPECT_EQ(BisectionWidth(Topology(2, 8, Wrap::kTorus)), 16);
  EXPECT_EQ(BisectionWidth(Topology(3, 8, Wrap::kMesh)), 64);
  EXPECT_EQ(BisectionWidth(Topology(3, 8, Wrap::kTorus)), 128);
  EXPECT_EQ(BisectionWidth(Topology(1, 8, Wrap::kMesh)), 1);
}

TEST(BisectionTest, KkBoundsMatchPaperFormulas) {
  // Section 1.1: kn/2 on the mesh, kn/4 on the torus.
  Topology mesh(3, 16, Wrap::kMesh);
  Topology torus(3, 16, Wrap::kTorus);
  for (std::int64_t k : {1, 2, 4, 8}) {
    EXPECT_DOUBLE_EQ(KkBisectionBound(mesh, k),
                     static_cast<double>(k) * 16 / 2.0);
    EXPECT_DOUBLE_EQ(KkBisectionBound(torus, k),
                     static_cast<double>(k) * 16 / 4.0);
  }
}

TEST(BisectionTest, SmallKIsDiameterDominated) {
  // Corollary 3.1.1 regime: for k <= floor(d/4) the 3D/2 term dominates the
  // bisection bound, which is why the same running time is possible at all.
  Topology mesh(8, 4, Wrap::kMesh);
  const double diameter_term = 1.5 * static_cast<double>(mesh.Diameter());
  for (std::int64_t k = 1; k <= 8 / 4; ++k) {
    EXPECT_LT(KkBisectionBound(mesh, k), diameter_term);
  }
}

TEST(BisectionTest, CrossoverGrowsWithDimension) {
  // D = d(n-1) grows with d while the bisection bound kn/2 does not, so the
  // crossover k moves out linearly in d.
  const std::int64_t k2 = BisectionCrossoverK(Topology(2, 16, Wrap::kMesh), 1.5);
  const std::int64_t k4 = BisectionCrossoverK(Topology(4, 16, Wrap::kMesh), 1.5);
  ASSERT_GT(k2, 0);
  ASSERT_GT(k4, 0);
  EXPECT_GT(k4, k2);
  EXPECT_NEAR(static_cast<double>(k4) / static_cast<double>(k2), 2.0, 0.35);
}

TEST(BisectionTest, CrossoverConsistency) {
  Topology topo(3, 16, Wrap::kMesh);
  const std::int64_t k = BisectionCrossoverK(topo, 1.5);
  ASSERT_GT(k, 1);
  EXPECT_GE(KkBisectionBound(topo, k), 1.5 * static_cast<double>(topo.Diameter()));
  EXPECT_LT(KkBisectionBound(topo, k - 1), 1.5 * static_cast<double>(topo.Diameter()));
}

}  // namespace
}  // namespace mdmesh
