// Tests for the experiment service (src/serve/): the JSON parser, RunSpec
// validation + fingerprinting, the HashEngineOptions field-sensitivity
// contract, the loopback HTTP server/client pair, the RunScheduler
// (dedup, queue bound, failure retry), and the acceptance drill — eight
// queued specs with two duplicates deduped to one execution, a drain that
// interrupts in-flight runs mid-step, and a restart that resumes every
// interrupted run with delivery hashes identical to uninterrupted
// reference runs.
#include <gtest/gtest.h>

#include <chrono>
#include <cstdint>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include "ckpt/manager.h"
#include "fault/fault_plan.h"
#include "meshsim/topology.h"
#include "net/engine.h"
#include "obs/critical_path.h"
#include "obs/flight_recorder.h"
#include "obs/probe.h"
#include "obs/registry.h"
#include "serve/http.h"
#include "serve/json_value.h"
#include "serve/run_spec.h"
#include "serve/scheduler.h"
#include "serve/service.h"
#include "util/thread_pool.h"
#include "workload/driver.h"
#include "workload/patterns.h"

namespace mdmesh {
namespace {

using testing::TempDir;

std::string FreshDir(const std::string& name) {
  const std::string dir = TempDir() + name;
  std::filesystem::remove_all(dir);
  return dir;
}

// ---------------------------------------------------------------------------
// JSON parser.

TEST(JsonValue, ParsesScalarsAndContainers) {
  const JsonParseResult r = ParseJson(
      "{\"a\": 1, \"b\": -2.5, \"c\": true, \"d\": null, "
      "\"e\": \"hi\\n\", \"f\": [1, 2, 3], \"g\": {\"x\": 7}}");
  ASSERT_TRUE(r.ok) << r.error;
  const JsonValue& v = r.value;
  EXPECT_TRUE(v.is_object());
  EXPECT_EQ(v["a"].AsInt(), 1);
  EXPECT_DOUBLE_EQ(v["b"].AsDouble(), -2.5);
  EXPECT_TRUE(v["c"].AsBool());
  EXPECT_TRUE(v["d"].is_null());
  EXPECT_EQ(v["e"].AsString(), "hi\n");
  ASSERT_EQ(v["f"].size(), 3u);
  EXPECT_EQ(v["f"].At(2).AsInt(), 3);
  EXPECT_EQ(v["g"]["x"].AsInt(), 7);
}

TEST(JsonValue, IntAndDoubleInterconvert) {
  const JsonParseResult r = ParseJson("{\"i\": 3, \"d\": 0.5}");
  ASSERT_TRUE(r.ok) << r.error;
  EXPECT_DOUBLE_EQ(r.value["i"].AsDouble(), 3.0);
  EXPECT_EQ(r.value["i"].type(), JsonValue::Type::kInt);
  EXPECT_EQ(r.value["d"].type(), JsonValue::Type::kDouble);
}

TEST(JsonValue, Uint64SeedsRoundTripLosslessly) {
  // Seeds exercise the full uint64 range; 2^64 - 1 must survive the parse.
  const JsonParseResult r = ParseJson("{\"seed\": 18446744073709551615}");
  ASSERT_TRUE(r.ok) << r.error;
  EXPECT_EQ(r.value["seed"].AsUInt(), 18446744073709551615ull);
}

TEST(JsonValue, MissingKeysChainToNull) {
  const JsonParseResult r = ParseJson("{\"a\": {\"b\": 1}}");
  ASSERT_TRUE(r.ok) << r.error;
  // No crash, no allocation of new members: a shared null at every level.
  EXPECT_TRUE(r.value["nope"]["deeper"]["still"].is_null());
  EXPECT_EQ(r.value["nope"]["deeper"].AsInt(), 0);
  EXPECT_FALSE(r.value.Has("nope"));
}

TEST(JsonValue, RejectsMalformedInputWithOffset) {
  for (const char* bad :
       {"{", "[1,]", "{\"a\":}", "tru", "01", "1 2", "{\"a\" 1}",
        "\"unterminated", "{\"a\": NaN}", ""}) {
    const JsonParseResult r = ParseJson(bad);
    EXPECT_FALSE(r.ok) << "accepted: " << bad;
    EXPECT_FALSE(r.error.empty());
  }
  const JsonParseResult r = ParseJson("{\"a\": 1} trailing");
  EXPECT_FALSE(r.ok);
  EXPECT_GE(r.offset, 9u);  // the error names the trailing-garbage byte
}

TEST(JsonValue, EnforcesDepthCap) {
  std::string deep;
  for (int i = 0; i < 100; ++i) deep += '[';
  for (int i = 0; i < 100; ++i) deep += ']';
  EXPECT_FALSE(ParseJson(deep).ok);          // default cap 64
  EXPECT_TRUE(ParseJson(deep, 128).ok);      // raised cap admits it
  std::string shallow = "[[[[1]]]]";
  EXPECT_TRUE(ParseJson(shallow).ok);
}

// ---------------------------------------------------------------------------
// RunSpec: round trip, validation, fingerprint.

RunSpec BaseSpec() {
  RunSpec s;
  s.d = 2;
  s.n = 8;
  s.pattern = PatternKind::kUniform;
  s.pattern_seed = 7;
  s.driver.rate = 0.1;
  s.driver.warmup_steps = 16;
  s.driver.measure_steps = 64;
  s.driver.drain = true;
  s.driver.seed = 9;
  return s;
}

TEST(RunSpec, JsonRoundTripPreservesFingerprint) {
  RunSpec s = BaseSpec();
  s.name = "round-trip";
  s.priority = 3;
  s.torus = true;
  s.pattern = PatternKind::kHotSpot;
  s.pattern_opts.hot_count = 2;
  s.pattern_opts.hot_skew = 0.75;
  s.step_cap = 123;
  s.stall_window = -1;
  s.sparse = SparseMode::kNever;
  s.layout = LayoutMode::kTiled;
  s.sparse_threshold = 0.25;

  RunSpec back;
  std::string error;
  ASSERT_TRUE(RunSpec::FromJsonText(s.ToJson(), &back, &error)) << error;
  EXPECT_EQ(back.name, s.name);
  EXPECT_EQ(back.priority, s.priority);
  EXPECT_EQ(back.d, s.d);
  EXPECT_EQ(back.n, s.n);
  EXPECT_EQ(back.torus, s.torus);
  EXPECT_EQ(back.pattern, s.pattern);
  EXPECT_EQ(back.pattern_seed, s.pattern_seed);
  EXPECT_EQ(back.pattern_opts.hot_count, s.pattern_opts.hot_count);
  EXPECT_DOUBLE_EQ(back.pattern_opts.hot_skew, s.pattern_opts.hot_skew);
  EXPECT_DOUBLE_EQ(back.driver.rate, s.driver.rate);
  EXPECT_EQ(back.driver.warmup_steps, s.driver.warmup_steps);
  EXPECT_EQ(back.driver.measure_steps, s.driver.measure_steps);
  EXPECT_EQ(back.driver.drain, s.driver.drain);
  EXPECT_EQ(back.driver.seed, s.driver.seed);
  EXPECT_EQ(back.step_cap, s.step_cap);
  EXPECT_EQ(back.stall_window, s.stall_window);
  EXPECT_EQ(back.sparse, s.sparse);
  EXPECT_EQ(back.layout, s.layout);
  EXPECT_DOUBLE_EQ(back.sparse_threshold, s.sparse_threshold);
  EXPECT_EQ(back.Fingerprint(), s.Fingerprint());
}

TEST(RunSpec, MinimalRequestParses) {
  RunSpec s;
  std::string error;
  ASSERT_TRUE(RunSpec::FromJsonText(
      "{\"topology\": {\"d\": 2, \"n\": 8}, "
      "\"pattern\": {\"kind\": \"uniform\"}, "
      "\"driver\": {\"rate\": 0.1, \"warmup\": 16, \"measure\": 64}}",
      &s, &error))
      << error;
  EXPECT_EQ(s.d, 2);
  EXPECT_EQ(s.n, 8);
  EXPECT_FALSE(s.torus);
  EXPECT_DOUBLE_EQ(s.driver.rate, 0.1);
}

TEST(RunSpec, RejectsBadShapesWithNamedField) {
  struct Case {
    const char* body;
    const char* needle;  // the error must name the offending field/key
  };
  const Case cases[] = {
      {"not json at all", "invalid JSON"},
      {"{\"topology\": {\"d\": 0, \"n\": 8}, \"pattern\": {\"kind\": "
       "\"uniform\"}, \"driver\": {\"rate\": 0.1, \"warmup\": 1, "
       "\"measure\": 1}}",
       "topology.d"},
      {"{\"topology\": {\"d\": 2, \"n\": 1}, \"pattern\": {\"kind\": "
       "\"uniform\"}, \"driver\": {\"rate\": 0.1, \"warmup\": 1, "
       "\"measure\": 1}}",
       "topology.n"},
      // 2^24 procs is the cap; 4096^3 = 2^36 must be rejected (and must
      // not overflow its way past the check).
      {"{\"topology\": {\"d\": 3, \"n\": 4096}, \"pattern\": {\"kind\": "
       "\"uniform\"}, \"driver\": {\"rate\": 0.1, \"warmup\": 1, "
       "\"measure\": 1}}",
       "processors"},
      {"{\"topology\": {\"d\": 2, \"n\": 8}, \"pattern\": {\"kind\": "
       "\"nope\"}, \"driver\": {\"rate\": 0.1, \"warmup\": 1, "
       "\"measure\": 1}}",
       "pattern.kind"},
      {"{\"topology\": {\"d\": 2, \"n\": 8}, \"pattern\": {\"kind\": "
       "\"uniform\"}, \"driver\": {\"rate\": 1.5, \"warmup\": 1, "
       "\"measure\": 1}}",
       "rate"},
      {"{\"topology\": {\"d\": 2, \"n\": 8}, \"pattern\": {\"kind\": "
       "\"uniform\"}, \"driver\": {\"rate\": 0.1, \"warmup\": 1, "
       "\"measure\": 0}}",
       "measure"},
      {"{\"topology\": {\"d\": 2, \"n\": 8}, \"pattern\": {\"kind\": "
       "\"uniform\"}, \"driver\": {\"rate\": 0.1, \"warmup\": 1, "
       "\"measure\": 1}, \"engine\": {\"layout\": \"fancy\"}}",
       "engine.layout"},
  };
  for (const Case& c : cases) {
    RunSpec s;
    std::string error;
    EXPECT_FALSE(RunSpec::FromJsonText(c.body, &s, &error))
        << "accepted: " << c.body;
    EXPECT_NE(error.find(c.needle), std::string::npos)
        << "error \"" << error << "\" does not mention " << c.needle;
  }
}

TEST(RunSpec, RejectsUnknownKeysInsteadOfIgnoringThem) {
  // A typoed knob must fail the request — if it silently fell back to the
  // default it would dedupe against the wrong run.
  RunSpec s;
  std::string error;
  EXPECT_FALSE(RunSpec::FromJsonText(
      "{\"topology\": {\"d\": 2, \"n\": 8}, \"pattern\": {\"kind\": "
      "\"uniform\"}, \"driver\": {\"rate\": 0.1, \"warmup\": 1, "
      "\"measure\": 1}, \"engine\": {\"sparse_treshold\": 0.5}}",
      &s, &error));
  EXPECT_NE(error.find("sparse_treshold"), std::string::npos) << error;
}

TEST(RunSpec, FingerprintSeesEveryResultAffectingField) {
  const RunSpec base = BaseSpec();
  const std::uint64_t h0 = base.Fingerprint();
  int changed = 0;
  auto expect_moves = [&](const char* field, RunSpec mutated) {
    EXPECT_NE(mutated.Fingerprint(), h0) << "fingerprint blind to " << field;
    ++changed;
  };
  {
    RunSpec s = base; s.d = 3; expect_moves("d", s);
  }
  {
    RunSpec s = base; s.n = 4; expect_moves("n", s);
  }
  {
    RunSpec s = base; s.torus = true; expect_moves("torus", s);
  }
  {
    RunSpec s = base; s.pattern = PatternKind::kTranspose;
    expect_moves("pattern", s);
  }
  {
    RunSpec s = base; s.pattern_seed = 8; expect_moves("pattern_seed", s);
  }
  {
    RunSpec s = base; s.pattern_opts.hot_count = 5;
    expect_moves("hot_count", s);
  }
  {
    RunSpec s = base; s.pattern_opts.hot_skew = 0.9;
    expect_moves("hot_skew", s);
  }
  {
    RunSpec s = base; s.driver.rate = 0.2; expect_moves("rate", s);
  }
  {
    RunSpec s = base; s.driver.warmup_steps = 17; expect_moves("warmup", s);
  }
  {
    RunSpec s = base; s.driver.measure_steps = 65;
    expect_moves("measure", s);
  }
  {
    RunSpec s = base; s.driver.drain = false; expect_moves("drain", s);
  }
  {
    RunSpec s = base; s.driver.seed = 10; expect_moves("driver.seed", s);
  }
  {
    RunSpec s = base; s.step_cap = 1000; expect_moves("step_cap", s);
  }
  {
    RunSpec s = base; s.stall_window = 77; expect_moves("stall_window", s);
  }
  {
    RunSpec s = base; s.sparse = SparseMode::kAlways;
    expect_moves("sparse", s);
  }
  {
    RunSpec s = base; s.layout = LayoutMode::kLegacy;
    expect_moves("layout", s);
  }
  {
    RunSpec s = base; s.sparse_threshold = 0.75;
    expect_moves("sparse_threshold", s);
  }
  EXPECT_EQ(changed, 17);
}

TEST(RunSpec, FingerprintIgnoresSchedulingOnlyFields) {
  // Name and priority change nothing about the delivery trace; two
  // requests differing only there are the same experiment.
  const RunSpec base = BaseSpec();
  RunSpec s = base;
  s.name = "different label";
  s.priority = 42;
  EXPECT_EQ(s.Fingerprint(), base.Fingerprint());
}

// ---------------------------------------------------------------------------
// HashEngineOptions field sensitivity (the other half of the dedup key).

TEST(HashEngineOptions, MovesForEveryResultAffectingField) {
  const EngineOptions base;
  const std::uint64_t h0 = HashEngineOptions(base);
  {
    EngineOptions o; o.step_cap = 99;
    EXPECT_NE(HashEngineOptions(o), h0);
  }
  {
    EngineOptions o; o.stall_window = -1;
    EXPECT_NE(HashEngineOptions(o), h0);
  }
  {
    EngineOptions o; o.invariants = InvariantMode::kOn;
    EXPECT_NE(HashEngineOptions(o), h0);
  }
  {
    EngineOptions o; o.sparse = SparseMode::kAlways;
    EXPECT_NE(HashEngineOptions(o), h0);
  }
  {
    EngineOptions o; o.layout = LayoutMode::kTiled;
    EXPECT_NE(HashEngineOptions(o), h0);
  }
  {
    EngineOptions o; o.sparse_threshold = 0.125;
    EXPECT_NE(HashEngineOptions(o), h0);
  }
  Topology topo(2, 4, Wrap::kMesh);
  {
    // A *non-empty* fault plan flips the presence bit...
    FaultSpec fspec;
    fspec.link_rate = 0.5;
    const FaultPlan plan = FaultPlan::Random(topo, fspec, /*seed=*/3);
    ASSERT_FALSE(plan.empty());
    EngineOptions o; o.faults = &plan;
    EXPECT_NE(HashEngineOptions(o), h0);
  }
  {
    // ...but an attached-and-empty plan is the fault-free hot path and
    // must hash identically to no plan at all.
    const FaultPlan plan(topo);
    ASSERT_TRUE(plan.empty());
    EngineOptions o; o.faults = &plan;
    EXPECT_EQ(HashEngineOptions(o), h0);
  }
  {
    TrafficPattern pattern(topo, PatternKind::kUniform, 1, {});
    OpenLoopInjector injector(topo, pattern, {});
    EngineOptions o; o.injector = &injector;
    EXPECT_NE(HashEngineOptions(o), h0);
  }
}

TEST(HashEngineOptions, IgnoresObservabilityAndExecutionHooks) {
  // None of these change a delivery trace (the engine's byte-identity
  // contracts), so none may move the hash: a checkpointed, traced,
  // metered run dedupes against — and resumes as — a bare one.
  const std::uint64_t h0 = HashEngineOptions({});
  MetricsRegistry registry;
  CongestionTrace trace;
  ThreadPool pool(0);
  FlightRecorder recorder(16);
  CheckpointOptions copts;
  copts.dir = FreshDir("serve_hash_ckpt");
  CheckpointManager ckpt(copts);

  EngineOptions o;
  o.metrics = &registry;
  o.probe = &trace;
  o.pool = &pool;
  o.recorder = &recorder;
  o.checkpoint = &ckpt;
  o.observer = [](std::int64_t, std::int64_t, std::int64_t) {};
  EXPECT_EQ(HashEngineOptions(o), h0);
}

TEST(RunSpec, MakeEngineOptionsCarriesExactlyTheSpecKnobs) {
  RunSpec s = BaseSpec();
  s.step_cap = 5;
  s.stall_window = 6;
  s.sparse = SparseMode::kNever;
  s.layout = LayoutMode::kLegacy;
  s.sparse_threshold = 0.3;
  const EngineOptions o = s.MakeEngineOptions();
  EXPECT_EQ(o.step_cap, 5);
  EXPECT_EQ(o.stall_window, 6);
  EXPECT_EQ(o.sparse, SparseMode::kNever);
  EXPECT_EQ(o.layout, LayoutMode::kLegacy);
  EXPECT_DOUBLE_EQ(o.sparse_threshold, 0.3);
  EXPECT_EQ(o.pool, nullptr);
  EXPECT_EQ(o.injector, nullptr);
  EXPECT_EQ(o.metrics, nullptr);
}

// ---------------------------------------------------------------------------
// HTTP server + client.

TEST(HttpServer, RoutesRequestsAndEchoesBodies) {
  HttpServer server;
  std::string error;
  ASSERT_TRUE(server.Start(0,
                           [](const HttpRequest& req) -> HttpResponse {
                             if (req.path == "/echo") {
                               return {200, "text/plain",
                                       req.method + " " + req.query + " " +
                                           req.body};
                             }
                             return {404, "text/plain", "nope"};
                           },
                           &error))
      << error;
  ASSERT_GT(server.port(), 0);

  HttpResult r = HttpFetch(server.port(), "POST", "/echo?x=1", "hello");
  ASSERT_TRUE(r.ok) << r.error;
  EXPECT_EQ(r.status, 200);
  EXPECT_EQ(r.body, "POST x=1 hello");

  r = HttpFetch(server.port(), "GET", "/missing");
  ASSERT_TRUE(r.ok) << r.error;
  EXPECT_EQ(r.status, 404);
  EXPECT_GE(server.requests_served(), 2);
  server.Stop();
  EXPECT_FALSE(server.running());
}

TEST(HttpServer, HandlerExceptionsBecome500) {
  HttpServer server;
  std::string error;
  ASSERT_TRUE(server.Start(0,
                           [](const HttpRequest&) -> HttpResponse {
                             throw std::runtime_error("boom");
                           },
                           &error))
      << error;
  const HttpResult r = HttpFetch(server.port(), "GET", "/");
  ASSERT_TRUE(r.ok) << r.error;
  EXPECT_EQ(r.status, 500);
}

TEST(HttpServer, OversizedRequestsAreSheddedNotServed) {
  HttpServer server;
  std::string error;
  ASSERT_TRUE(server.Start(0,
                           [](const HttpRequest&) -> HttpResponse {
                             return {200, "text/plain", "served"};
                           },
                           &error))
      << error;
  const std::string huge(HttpServer::kMaxRequestBytes + 1, 'x');
  const HttpResult big = HttpFetch(server.port(), "POST", "/", huge);
  // The server stops reading at the cap and answers 413; depending on
  // socket buffering the client may instead see the connection drop while
  // still sending. Either way the request must not be served...
  if (big.ok) EXPECT_EQ(big.status, 413);
  // ...and the server must survive it and keep serving normal requests.
  const HttpResult after = HttpFetch(server.port(), "GET", "/");
  ASSERT_TRUE(after.ok) << after.error;
  EXPECT_EQ(after.status, 200);
  EXPECT_EQ(after.body, "served");
}

// ---------------------------------------------------------------------------
// RunScheduler.

RunSpec QuickSpec(std::uint64_t seed) {
  RunSpec s = BaseSpec();
  s.driver.seed = seed;
  s.pattern_seed = seed;
  return s;
}

// Long enough that a drain reliably lands mid-run (tens of thousands of
// engine steps), short enough that completing one is still cheap.
RunSpec LongSpec(std::uint64_t seed) {
  RunSpec s = QuickSpec(seed);
  s.driver.warmup_steps = 200;
  s.driver.measure_steps = 50000;
  return s;
}

bool WaitForState(const RunScheduler& sched, std::int64_t id, RunState want,
                  std::int64_t timeout_ms) {
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(timeout_ms);
  RunRecord rec;
  while (std::chrono::steady_clock::now() < deadline) {
    if (sched.Get(id, &rec) && rec.state == want) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  return false;
}

bool WaitForRunning(const RunScheduler& sched, std::int64_t timeout_ms) {
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(timeout_ms);
  while (std::chrono::steady_clock::now() < deadline) {
    if (sched.CountByState().running >= 1) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  return false;
}

TEST(RunScheduler, ExecutesARunAndEmitsArtifacts) {
  SchedulerOptions opts;
  opts.artifacts_dir = FreshDir("serve_basic");
  opts.workers = 1;
  RunScheduler sched(opts);
  std::string error;
  ASSERT_TRUE(sched.Start(&error)) << error;

  const auto out = sched.Submit(QuickSpec(1));
  ASSERT_TRUE(out.accepted) << out.error;
  EXPECT_FALSE(out.deduped);
  ASSERT_TRUE(sched.WaitIdle(30000));

  RunRecord rec;
  ASSERT_TRUE(sched.Get(out.id, &rec));
  EXPECT_EQ(rec.state, RunState::kDone);
  ASSERT_TRUE(rec.has_result);
  EXPECT_GT(rec.result.delivered, 0);
  EXPECT_NE(rec.delivery_hash, 0u);
  EXPECT_TRUE(std::filesystem::exists(rec.artifact_dir + "/result.json"));
  EXPECT_TRUE(std::filesystem::exists(rec.artifact_dir + "/metrics.prom"));
  EXPECT_TRUE(std::filesystem::exists(rec.artifact_dir + "/trace.json"));
  EXPECT_TRUE(std::filesystem::exists(opts.artifacts_dir + "/" +
                                      std::string(RunScheduler::kQueueFile)));
  sched.Drain();
}

TEST(RunScheduler, DedupsIdenticalSpecsToOneExecution) {
  MetricsRegistry registry;
  SchedulerOptions opts;
  opts.artifacts_dir = FreshDir("serve_dedup");
  opts.workers = 1;
  opts.metrics = &registry;
  RunScheduler sched(opts);
  std::string error;
  ASSERT_TRUE(sched.Start(&error)) << error;

  const auto first = sched.Submit(QuickSpec(2));
  ASSERT_TRUE(first.accepted) << first.error;

  // Same experiment under a different label and priority: shared record.
  RunSpec relabeled = QuickSpec(2);
  relabeled.name = "same experiment, different label";
  relabeled.priority = 9;
  const auto dup = sched.Submit(relabeled);
  ASSERT_TRUE(dup.accepted) << dup.error;
  EXPECT_TRUE(dup.deduped);
  EXPECT_EQ(dup.id, first.id);

  // Dedup holds after completion too: done records stay in the table.
  ASSERT_TRUE(sched.WaitIdle(30000));
  const auto late = sched.Submit(QuickSpec(2));
  ASSERT_TRUE(late.accepted) << late.error;
  EXPECT_TRUE(late.deduped);
  EXPECT_EQ(late.id, first.id);

  RunRecord rec;
  ASSERT_TRUE(sched.Get(first.id, &rec));
  EXPECT_EQ(rec.dedup_hits, 2);
  EXPECT_EQ(rec.state, RunState::kDone);
  EXPECT_EQ(registry.counter("serve.submitted").Total(), 3);
  EXPECT_EQ(registry.counter("serve.deduped").Total(), 2);

  // A genuinely different spec gets its own record.
  const auto other = sched.Submit(QuickSpec(3));
  ASSERT_TRUE(other.accepted) << other.error;
  EXPECT_FALSE(other.deduped);
  EXPECT_NE(other.id, first.id);
  sched.Drain();
}

TEST(RunScheduler, EmitsJourneysArtifactAndSchedulerGauges) {
  MetricsRegistry registry;
  SchedulerOptions opts;
  opts.artifacts_dir = FreshDir("serve_journeys");
  opts.workers = 1;
  opts.journey_rate_pm = 1000;  // trace every packet
  opts.metrics = &registry;
  RunScheduler sched(opts);
  std::string error;
  ASSERT_TRUE(sched.Start(&error)) << error;

  // The scheduler gauges are pre-registered at Start, so the very first
  // /metrics scrape already carries the series at their true values.
  const std::string prom = registry.ToPrometheus();
  EXPECT_NE(prom.find("mdmesh_serve_queued"), std::string::npos);
  EXPECT_NE(prom.find("mdmesh_serve_running"), std::string::npos);
  EXPECT_NE(prom.find("mdmesh_serve_dedup_hits"), std::string::npos);

  const auto out = sched.Submit(QuickSpec(31));
  ASSERT_TRUE(out.accepted) << out.error;
  ASSERT_TRUE(sched.WaitIdle(30000));

  RunRecord rec;
  ASSERT_TRUE(sched.Get(out.id, &rec));
  ASSERT_EQ(rec.state, RunState::kDone);
  const std::string journeys = rec.artifact_dir + "/journeys.jsonl";
  ASSERT_TRUE(std::filesystem::exists(journeys));
  EXPECT_GT(std::filesystem::file_size(journeys), 0u);
  ASSERT_TRUE(rec.has_result);
  ASSERT_NE(rec.result.route.critical_path, nullptr);
  EXPECT_EQ(rec.result.route.critical_path->identity_violations, 0);

  // dedup_hits is a live gauge, not just a per-record counter.
  EXPECT_EQ(registry.gauge("serve.dedup_hits").Value(), 0);
  const auto dup1 = sched.Submit(QuickSpec(31));
  const auto dup2 = sched.Submit(QuickSpec(31));
  ASSERT_TRUE(dup1.deduped);
  ASSERT_TRUE(dup2.deduped);
  EXPECT_EQ(registry.gauge("serve.dedup_hits").Value(), 2);
  sched.Drain();
}

TEST(RunScheduler, RetentionEvictsAllButTheNewestCompletedRuns) {
  MetricsRegistry registry;
  SchedulerOptions opts;
  opts.artifacts_dir = FreshDir("serve_retention");
  opts.workers = 1;  // serial execution: ids complete in order
  opts.keep_completed_runs = 2;
  opts.metrics = &registry;
  std::vector<std::int64_t> ids;
  {
    RunScheduler sched(opts);
    std::string error;
    ASSERT_TRUE(sched.Start(&error)) << error;
    for (std::uint64_t seed = 50; seed < 54; ++seed) {
      const auto out = sched.Submit(QuickSpec(seed));
      ASSERT_TRUE(out.accepted) << out.error;
      ids.push_back(out.id);
    }
    ASSERT_TRUE(sched.WaitIdle(60000));

    // Newest two keep their artifacts; the two oldest are reclaimed but
    // survive as history records.
    for (std::size_t i = 0; i < ids.size(); ++i) {
      RunRecord rec;
      ASSERT_TRUE(sched.Get(ids[i], &rec));
      EXPECT_EQ(rec.state, RunState::kDone);
      const bool kept = i >= ids.size() - 2;
      EXPECT_EQ(rec.evicted, !kept) << "run " << rec.id;
      EXPECT_EQ(rec.artifact_dir.empty(), !kept) << "run " << rec.id;
      if (kept) {
        EXPECT_TRUE(
            std::filesystem::exists(rec.artifact_dir + "/result.json"));
      } else {
        EXPECT_FALSE(std::filesystem::exists(
            opts.artifacts_dir + "/run-" + std::to_string(rec.id)));
      }
    }
    EXPECT_EQ(registry.counter("serve.evicted").Total(), 2);
    EXPECT_TRUE(
        std::filesystem::exists(opts.artifacts_dir + "/evictions.log"));
    sched.Drain();
  }

  // Eviction is durable: a restarted scheduler must not resurrect the
  // reclaimed directories or re-evict the survivors.
  RunScheduler restarted(opts);
  std::string error;
  ASSERT_TRUE(restarted.Start(&error)) << error;
  ASSERT_TRUE(restarted.WaitIdle(60000));
  for (std::size_t i = 0; i < ids.size(); ++i) {
    RunRecord rec;
    ASSERT_TRUE(restarted.Get(ids[i], &rec));
    EXPECT_EQ(rec.state, RunState::kDone);
    EXPECT_EQ(rec.evicted, i < ids.size() - 2);
    if (!rec.evicted) {
      EXPECT_TRUE(
          std::filesystem::exists(rec.artifact_dir + "/result.json"));
    }
  }
  EXPECT_EQ(registry.counter("serve.evicted").Total(), 2);
  restarted.Drain();
}

TEST(RunScheduler, BoundedQueueRejectsOverflow) {
  SchedulerOptions opts;
  opts.artifacts_dir = FreshDir("serve_bound");
  opts.workers = 1;
  opts.queue_limit = 2;
  RunScheduler sched(opts);
  std::string error;
  ASSERT_TRUE(sched.Start(&error)) << error;

  // Occupy the single worker, then fill the queue.
  ASSERT_TRUE(sched.Submit(LongSpec(10)).accepted);
  ASSERT_TRUE(WaitForRunning(sched, 15000));
  ASSERT_TRUE(sched.Submit(LongSpec(11)).accepted);
  ASSERT_TRUE(sched.Submit(LongSpec(12)).accepted);

  const auto rejected = sched.Submit(LongSpec(13));
  EXPECT_FALSE(rejected.accepted);
  EXPECT_NE(rejected.error.find("queue full"), std::string::npos)
      << rejected.error;

  // A duplicate of a queued spec still dedups — dedup wins over the bound.
  const auto dup = sched.Submit(LongSpec(11));
  EXPECT_TRUE(dup.accepted);
  EXPECT_TRUE(dup.deduped);
  sched.Drain();
}

TEST(RunScheduler, FailedRunsAreRetryableNotDeduped) {
  SchedulerOptions opts;
  opts.artifacts_dir = FreshDir("serve_fail");
  opts.workers = 1;
  RunScheduler sched(opts);
  std::string error;
  ASSERT_TRUE(sched.Start(&error)) << error;

  // step_cap = 1 aborts the run on its first step: a deterministic failure.
  RunSpec doomed = QuickSpec(4);
  doomed.step_cap = 1;
  const auto first = sched.Submit(doomed);
  ASSERT_TRUE(first.accepted) << first.error;
  ASSERT_TRUE(WaitForState(sched, first.id, RunState::kFailed, 30000));

  RunRecord rec;
  ASSERT_TRUE(sched.Get(first.id, &rec));
  EXPECT_NE(rec.error.find("step_cap"), std::string::npos) << rec.error;

  // The failed fingerprint was evicted: a re-submission runs fresh
  // instead of sharing the failure.
  const auto retry = sched.Submit(doomed);
  ASSERT_TRUE(retry.accepted) << retry.error;
  EXPECT_FALSE(retry.deduped);
  EXPECT_NE(retry.id, first.id);
  sched.Drain();
}

TEST(RunScheduler, SubmitAfterDrainIsRejected) {
  SchedulerOptions opts;
  opts.artifacts_dir = FreshDir("serve_drained");
  RunScheduler sched(opts);
  std::string error;
  ASSERT_TRUE(sched.Start(&error)) << error;
  sched.Drain();
  const auto out = sched.Submit(QuickSpec(5));
  EXPECT_FALSE(out.accepted);
  EXPECT_NE(out.error.find("draining"), std::string::npos) << out.error;
}

// The acceptance drill: eight queued specs with two duplicates deduped to
// one execution, a drain that interrupts in-flight runs mid-step (each
// checkpointing through the engine's abort path), and a restarted
// scheduler on the same artifact root that resumes every interrupted run —
// with delivery hashes identical to uninterrupted reference runs.
TEST(RunScheduler, DrainAndRestartResumeByteIdentically) {
  const std::string dir = FreshDir("serve_e2e");

  // Six unique experiments; submissions 7 and 8 duplicate the first two.
  std::vector<RunSpec> specs;
  for (std::uint64_t seed = 20; seed < 26; ++seed) {
    specs.push_back(LongSpec(seed));
  }
  RunSpec dup0 = specs[0];
  dup0.name = "duplicate of the first";
  RunSpec dup1 = specs[1];
  dup1.priority = 7;  // scheduling-only field: still the same experiment

  // Uninterrupted references, computed outside any scheduler.
  std::vector<std::uint64_t> want;
  for (const RunSpec& spec : specs) {
    Topology topo(spec.d, spec.n, spec.torus ? Wrap::kTorus : Wrap::kMesh);
    TrafficPattern pattern(topo, spec.pattern, spec.pattern_seed,
                           spec.pattern_opts);
    const WorkloadResult ref =
        RunOpenLoop(topo, pattern, spec.driver, spec.MakeEngineOptions());
    ASSERT_EQ(ref.route.stall_report, nullptr);
    want.push_back(ref.delivery_hash);
  }

  MetricsRegistry registry;
  SchedulerOptions opts;
  opts.artifacts_dir = dir;
  opts.workers = 2;
  opts.threads_per_run = 0;
  opts.checkpoint_every_steps = 64;
  opts.checkpoint_keep = 3;
  opts.metrics = &registry;

  std::vector<std::int64_t> ids;
  {
    RunScheduler sched(opts);
    std::string error;
    ASSERT_TRUE(sched.Start(&error)) << error;

    for (const RunSpec& spec : specs) {
      const auto out = sched.Submit(spec);
      ASSERT_TRUE(out.accepted) << out.error;
      EXPECT_FALSE(out.deduped);
      ids.push_back(out.id);
    }
    const auto d0 = sched.Submit(dup0);
    ASSERT_TRUE(d0.accepted) << d0.error;
    EXPECT_TRUE(d0.deduped);
    EXPECT_EQ(d0.id, ids[0]);
    const auto d1 = sched.Submit(dup1);
    ASSERT_TRUE(d1.accepted) << d1.error;
    EXPECT_TRUE(d1.deduped);
    EXPECT_EQ(d1.id, ids[1]);
    EXPECT_EQ(registry.counter("serve.deduped").Total(), 2);

    // SIGTERM equivalent: drain as soon as work is in flight.
    ASSERT_TRUE(WaitForRunning(sched, 15000));
    sched.Drain();

    const auto counts = sched.CountByState();
    EXPECT_GE(counts.interrupted, 1)
        << "drain caught nothing in flight (queued=" << counts.queued
        << " done=" << counts.done << ")";
    EXPECT_EQ(counts.running, 0);
    bool any_resumable = false;
    for (const RunRecord& rec : sched.Snapshot()) {
      if (rec.state == RunState::kInterrupted) {
        EXPECT_TRUE(rec.resume_pending);
        // Interrupted runs leave checkpoints, not results.
        EXPECT_FALSE(rec.has_result);
        any_resumable = any_resumable || rec.resume_pending;
      }
    }
    EXPECT_TRUE(any_resumable);
  }

  // "Restart the server": a new scheduler on the same artifact root picks
  // up queue.json, re-enqueues interrupted + queued work, and resumes from
  // the drain checkpoints.
  {
    RunScheduler sched(opts);
    std::string error;
    ASSERT_TRUE(sched.Start(&error)) << error;
    ASSERT_TRUE(sched.WaitIdle(120000));

    const auto counts = sched.CountByState();
    EXPECT_EQ(counts.done, static_cast<std::int64_t>(specs.size()));
    EXPECT_EQ(counts.queued, 0);
    EXPECT_EQ(counts.interrupted, 0);
    EXPECT_EQ(counts.failed, 0);
    EXPECT_GE(sched.resumed_runs(), 1)
        << "no run continued from a drain checkpoint";

    for (std::size_t i = 0; i < specs.size(); ++i) {
      RunRecord rec;
      ASSERT_TRUE(sched.Get(ids[i], &rec)) << "run " << ids[i] << " lost "
                                           << "across the restart";
      EXPECT_EQ(rec.state, RunState::kDone);
      EXPECT_EQ(rec.delivery_hash, want[i])
          << "run " << ids[i] << " diverged after drain + resume";
    }
    // Dedup state survived the restart too.
    RunRecord primary;
    ASSERT_TRUE(sched.Get(ids[0], &primary));
    EXPECT_EQ(primary.dedup_hits, 1);
    const auto dup_again = sched.Submit(dup0);
    ASSERT_TRUE(dup_again.accepted) << dup_again.error;
    EXPECT_TRUE(dup_again.deduped);
    EXPECT_EQ(dup_again.id, ids[0]);
    sched.Drain();
  }
}

// ---------------------------------------------------------------------------
// ExperimentService: the HTTP control plane end to end.

TEST(ExperimentService, HttpControlPlaneEndToEnd) {
  ServiceOptions opts;
  opts.scheduler.artifacts_dir = FreshDir("serve_http");
  opts.scheduler.workers = 2;
  ExperimentService service(opts);
  std::string error;
  ASSERT_TRUE(service.Start(&error)) << error;
  const int port = service.port();
  ASSERT_GT(port, 0);

  // Liveness + 404 + 405 surfaces.
  EXPECT_EQ(HttpFetch(port, "GET", "/healthz").status, 200);
  EXPECT_EQ(HttpFetch(port, "GET", "/no-such-route").status, 404);
  EXPECT_EQ(HttpFetch(port, "DELETE", "/runs").status, 405);
  EXPECT_EQ(HttpFetch(port, "GET", "/runs/notanumber").status, 400);
  EXPECT_EQ(HttpFetch(port, "GET", "/runs/999").status, 404);

  // Invalid spec: 400 with the offending field named.
  const HttpResult bad =
      HttpFetch(port, "POST", "/runs", "{\"topology\": {\"d\": 0}}");
  ASSERT_TRUE(bad.ok) << bad.error;
  EXPECT_EQ(bad.status, 400);
  EXPECT_NE(bad.body.find("topology"), std::string::npos) << bad.body;

  // Submit, then the duplicate.
  const std::string spec = QuickSpec(30).ToJson();
  const HttpResult sub = HttpFetch(port, "POST", "/runs", spec);
  ASSERT_TRUE(sub.ok) << sub.error;
  ASSERT_EQ(sub.status, 202) << sub.body;
  const JsonParseResult sub_json = ParseJson(sub.body);
  ASSERT_TRUE(sub_json.ok) << sub_json.error;
  const std::int64_t id = sub_json.value["id"].AsInt();
  EXPECT_FALSE(sub_json.value["deduped"].AsBool());
  EXPECT_EQ(sub_json.value["location"].AsString(),
            "/runs/" + std::to_string(id));

  const HttpResult dup = HttpFetch(port, "POST", "/runs", spec);
  ASSERT_TRUE(dup.ok) << dup.error;
  ASSERT_EQ(dup.status, 202) << dup.body;
  const JsonParseResult dup_json = ParseJson(dup.body);
  ASSERT_TRUE(dup_json.ok) << dup_json.error;
  EXPECT_TRUE(dup_json.value["deduped"].AsBool());
  EXPECT_EQ(dup_json.value["id"].AsInt(), id);

  // Poll the record to completion, exactly as serve_client.py wait does.
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(60);
  std::string state;
  JsonParseResult record;
  while (std::chrono::steady_clock::now() < deadline) {
    const HttpResult get =
        HttpFetch(port, "GET", "/runs/" + std::to_string(id));
    ASSERT_TRUE(get.ok) << get.error;
    ASSERT_EQ(get.status, 200) << get.body;
    record = ParseJson(get.body);
    ASSERT_TRUE(record.ok) << record.error;
    state = record.value["state"].AsString();
    if (state == "done" || state == "failed") break;
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  ASSERT_EQ(state, "done") << record.value["error"].AsString();
  EXPECT_EQ(record.value["dedup_hits"].AsInt(), 1);
  EXPECT_NE(record.value["delivery_hash"].AsUInt(), 0u);
  EXPECT_GT(record.value["result"]["delivered"].AsInt(), 0);
  const std::string result_path =
      record.value["artifacts"]["result"].AsString();
  EXPECT_TRUE(std::filesystem::exists(result_path)) << result_path;

  // Listing carries counts + every record.
  const HttpResult list = HttpFetch(port, "GET", "/runs");
  ASSERT_TRUE(list.ok) << list.error;
  ASSERT_EQ(list.status, 200);
  const JsonParseResult list_json = ParseJson(list.body);
  ASSERT_TRUE(list_json.ok) << list_json.error;
  EXPECT_GE(list_json.value["counts"]["done"].AsInt(), 1);
  EXPECT_EQ(list_json.value["runs"].size(), 1u);

  // Live metrics: service counters stream out in Prometheus text form.
  const HttpResult metrics = HttpFetch(port, "GET", "/metrics");
  ASSERT_TRUE(metrics.ok) << metrics.error;
  ASSERT_EQ(metrics.status, 200);
  EXPECT_NE(metrics.body.find("serve_submitted"), std::string::npos)
      << metrics.body;
  EXPECT_NE(metrics.body.find("serve_completed"), std::string::npos);
  EXPECT_NE(metrics.body.find("serve_http_requests"), std::string::npos);

  const HttpResult status = HttpFetch(port, "GET", "/status");
  ASSERT_TRUE(status.ok) << status.error;
  const JsonParseResult status_json = ParseJson(status.body);
  ASSERT_TRUE(status_json.ok) << status_json.error;
  EXPECT_EQ(status_json.value["service"].AsString(),
            "mdmesh-experiment-server");
  EXPECT_FALSE(status_json.value["draining"].AsBool());

  service.Stop();
  EXPECT_FALSE(service.running());
}

TEST(ExperimentService, QueueFullSurfacesAs429) {
  ServiceOptions opts;
  opts.scheduler.artifacts_dir = FreshDir("serve_http_429");
  opts.scheduler.workers = 1;
  opts.scheduler.queue_limit = 1;
  ExperimentService service(opts);
  std::string error;
  ASSERT_TRUE(service.Start(&error)) << error;
  const int port = service.port();

  // Occupy the worker, fill the one queue slot, then overflow.
  ASSERT_EQ(HttpFetch(port, "POST", "/runs", LongSpec(40).ToJson()).status,
            202);
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(15);
  while (service.scheduler().CountByState().running < 1 &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  ASSERT_GE(service.scheduler().CountByState().running, 1);
  ASSERT_EQ(HttpFetch(port, "POST", "/runs", LongSpec(41).ToJson()).status,
            202);
  const HttpResult full =
      HttpFetch(port, "POST", "/runs", LongSpec(42).ToJson());
  ASSERT_TRUE(full.ok) << full.error;
  EXPECT_EQ(full.status, 429) << full.body;
  EXPECT_NE(full.body.find("queue full"), std::string::npos) << full.body;
  service.Stop();
}

}  // namespace
}  // namespace mdmesh
