#include "routing/greedy.h"

#include <gtest/gtest.h>

#include <tuple>

namespace mdmesh {
namespace {

TEST(GreedyTest, SingleRandomPermutationNearDistanceOptimal) {
  // Leighton [13]: one random permutation routes distance-optimally under
  // plain greedy. At n = 16 the o(n) slack is a small constant.
  Topology topo(2, 16, Wrap::kMesh);
  GreedyOptions opts;
  opts.seed = 11;
  GreedyRun run = RouteRandomPermutations(topo, 1, opts);
  EXPECT_TRUE(run.route.completed);
  EXPECT_LE(run.route.max_overshoot, topo.side());
  EXPECT_LE(run.route.steps, run.route.max_distance + topo.side());
}

class MultiPermTest
    : public ::testing::TestWithParam<std::tuple<int, int, Wrap, int>> {};

TEST_P(MultiPermTest, SimultaneousPermutationsDeliver) {
  auto [d, n, wrap, j] = GetParam();
  Topology topo(d, n, wrap);
  GreedyOptions opts;
  opts.seed = 21;
  GreedyRun run = RouteRandomPermutations(topo, j, opts);
  EXPECT_TRUE(run.route.completed);
  EXPECT_EQ(run.route.packets, topo.size() * j);
  // Sanity cap: even heavy multi-permutation loads stay within a small
  // multiple of the diameter.
  EXPECT_LE(run.route.steps, (2 + j) * topo.Diameter() + 8 * n);
}

INSTANTIATE_TEST_SUITE_P(
    Loads, MultiPermTest,
    ::testing::Values(std::tuple{2, 8, Wrap::kMesh, 1},
                      std::tuple{2, 8, Wrap::kMesh, 2},
                      std::tuple{2, 8, Wrap::kTorus, 4},
                      std::tuple{3, 6, Wrap::kMesh, 1},
                      std::tuple{3, 6, Wrap::kTorus, 6},
                      std::tuple{4, 4, Wrap::kMesh, 2},
                      std::tuple{4, 4, Wrap::kTorus, 8}));

TEST(GreedyTest, TorusTwoDPermsStaysNearDistanceOptimal) {
  // Lemma 2.1: 2d random permutations route distance-optimally on the
  // d-dimensional torus. Overshoot should be o(n) — we allow ~1.5n at this
  // tiny scale and check it is far below the trivial bound.
  Topology topo(3, 8, Wrap::kTorus);
  GreedyOptions opts;
  opts.seed = 5;
  GreedyRun run = RouteRandomPermutations(topo, 6, opts);
  EXPECT_TRUE(run.route.completed);
  EXPECT_LT(run.route.max_overshoot, 2 * topo.side());
}

TEST(GreedyTest, UnshufflePermutationsDeliver) {
  Topology topo(2, 8, Wrap::kMesh);
  BlockGrid grid(topo, 2);
  GreedyOptions opts;
  opts.seed = 31;
  GreedyRun run = RouteUnshufflePermutations(topo, grid, 2, opts);
  EXPECT_TRUE(run.route.completed);
  EXPECT_EQ(run.route.packets, 2 * topo.size());
}

TEST(GreedyTest, ExplicitPermutationReversal) {
  Topology topo(2, 8, Wrap::kMesh);
  GreedyOptions opts;
  GreedyRun run = RouteOnePermutation(topo, ReversalPermutation(topo), opts);
  EXPECT_TRUE(run.route.completed);
  EXPECT_EQ(run.route.max_distance, topo.Diameter());
  EXPECT_GE(run.route.steps, topo.Diameter());
}

TEST(GreedyTest, LocalRankClassesAlsoDeliver) {
  Topology topo(2, 8, Wrap::kMesh);
  GreedyOptions opts;
  opts.class_mode = ClassMode::kLocalRank;
  opts.class_grid_g = 2;
  GreedyRun run = RouteRandomPermutations(topo, 2, opts);
  EXPECT_TRUE(run.route.completed);
}

TEST(GreedyTest, DeterministicGivenSeed) {
  Topology topo(2, 8, Wrap::kMesh);
  GreedyOptions opts;
  opts.seed = 99;
  auto a = RouteRandomPermutations(topo, 2, opts);
  auto b = RouteRandomPermutations(topo, 2, opts);
  EXPECT_EQ(a.route.steps, b.route.steps);
  EXPECT_EQ(a.route.moves, b.route.moves);
  EXPECT_EQ(a.route.max_queue, b.route.max_queue);
}

TEST(GreedyTest, MoreParallelPermutationsNeverGetFaster) {
  // Adding simultaneous permutations can only add contention.
  Topology topo(2, 12, Wrap::kTorus);
  GreedyOptions opts;
  opts.seed = 13;
  auto one = RouteRandomPermutations(topo, 1, opts);
  auto four = RouteRandomPermutations(topo, 4, opts);
  EXPECT_LE(one.route.steps, four.route.steps + 2);
}

}  // namespace
}  // namespace mdmesh
