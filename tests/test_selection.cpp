#include "sorting/selection.h"

#include <gtest/gtest.h>

#include <tuple>

#include "sorting/kk_sort.h"

namespace mdmesh {
namespace {

struct SelFixture {
  Topology topo;
  BlockGrid grid;
  Network net;
  GroundTruth truth;
  SelFixture(int d, int n, int g, InputKind kind, std::uint64_t seed)
      : topo(d, n, Wrap::kMesh), grid(topo, g), net(topo) {
    FillInput(net, grid, 1, kind, seed);
    truth = CaptureGroundTruth(net);
  }
};

class SelectionTest
    : public ::testing::TestWithParam<std::tuple<int, int, int>> {};

TEST_P(SelectionTest, FindsExactMedian) {
  auto [d, n, g] = GetParam();
  SelFixture s(d, n, g, InputKind::kRandom, 111);
  const std::int64_t target = (static_cast<std::int64_t>(s.truth.size()) - 1) / 2;
  SortOptions opts;
  opts.g = g;
  SelectResult r = SelectAtCenter(s.net, s.grid, opts, target);
  ASSERT_TRUE(r.found);
  EXPECT_EQ(r.selected_key, s.truth[static_cast<std::size_t>(target)].first);
  EXPECT_TRUE(r.completed);
}

INSTANTIATE_TEST_SUITE_P(Networks, SelectionTest,
                         ::testing::Values(std::tuple{2, 8, 2},
                                           std::tuple{2, 16, 2},
                                           std::tuple{2, 16, 4},
                                           std::tuple{2, 32, 4},
                                           std::tuple{3, 8, 2},
                                           std::tuple{3, 16, 2},
                                           std::tuple{4, 8, 2}));

TEST(SelectionTest, ArbitraryRanksAreExact) {
  SelFixture s(2, 16, 2, InputKind::kRandom, 113);
  const auto total = static_cast<std::int64_t>(s.truth.size());
  for (std::int64_t target : {std::int64_t{0}, total / 4, total - 1}) {
    SelFixture fresh(2, 16, 2, InputKind::kRandom, 113);
    SortOptions opts;
    opts.g = 2;
    SelectResult r = SelectAtCenter(fresh.net, fresh.grid, opts, target);
    ASSERT_TRUE(r.found) << "target " << target;
    EXPECT_EQ(r.selected_key, s.truth[static_cast<std::size_t>(target)].first)
        << "target " << target;
  }
}

TEST(SelectionTest, DuplicateKeysHandled) {
  SelFixture s(2, 16, 2, InputKind::kFewValues, 117);
  const std::int64_t target = (static_cast<std::int64_t>(s.truth.size()) - 1) / 2;
  SortOptions opts;
  opts.g = 2;
  SelectResult r = SelectAtCenter(s.net, s.grid, opts, target);
  ASSERT_TRUE(r.found);
  EXPECT_EQ(r.selected_key, s.truth[static_cast<std::size_t>(target)].first);
}

TEST(SelectionTest, CandidateSetIsSmallFraction) {
  // The candidate window has size O(m^2 * mc / N)-ish; at n = 32 it must be
  // a small fraction of all packets — that is what makes the final hop D/4.
  SelFixture s(2, 32, 2, InputKind::kRandom, 119);
  const std::int64_t target = (static_cast<std::int64_t>(s.truth.size()) - 1) / 2;
  SortOptions opts;
  opts.g = 2;
  SelectResult r = SelectAtCenter(s.net, s.grid, opts, target);
  ASSERT_TRUE(r.found);
  EXPECT_LT(r.candidates, static_cast<std::int64_t>(s.truth.size()) / 4);
  EXPECT_GT(r.candidates, 0);
}

TEST(SelectionTest, RoutingWithinDiameterPlusSlack) {
  // Section 4.3 upper bound: D + o(n) total routing.
  SelFixture s(2, 32, 4, InputKind::kRandom, 121);
  const std::int64_t target = (static_cast<std::int64_t>(s.truth.size()) - 1) / 2;
  SortOptions opts;
  opts.g = 4;
  SelectResult r = SelectAtCenter(s.net, s.grid, opts, target);
  ASSERT_TRUE(r.found);
  EXPECT_LE(r.routing_steps,
            s.topo.Diameter() + 4 * s.topo.side());  // generous o(n) at n=32
}

TEST(SelectionTest, RejectsOutOfRangeTarget) {
  SelFixture s(2, 8, 2, InputKind::kRandom, 123);
  SortOptions opts;
  opts.g = 2;
  EXPECT_THROW(SelectAtCenter(s.net, s.grid, opts, -1), std::invalid_argument);
  SelFixture t(2, 8, 2, InputKind::kRandom, 123);
  EXPECT_THROW(SelectAtCenter(t.net, t.grid, opts, t.topo.size()),
               std::invalid_argument);
}


TEST(SelectionTest, DegenerateMarginFlagged) {
  // A grid too fine for the network: margin (m+2)*mc covers most ranks.
  SelFixture fine(2, 16, 4, InputKind::kRandom, 131);  // m=16: margin 18*8=144 vs N=256
  SortOptions opts;
  opts.g = 4;
  SelectResult r = SelectAtCenter(fine.net, fine.grid, opts, 127);
  EXPECT_TRUE(r.degenerate_margin);
  EXPECT_TRUE(r.found);  // still exact, just not fast

  // A coarse grid on the same network is fine: margin (4+2)*2 = 12 << 256.
  SelFixture coarse(2, 16, 2, InputKind::kRandom, 131);
  SortOptions copts;
  copts.g = 2;
  SelectResult rc = SelectAtCenter(coarse.net, coarse.grid, copts, 127);
  EXPECT_FALSE(rc.degenerate_margin);
  EXPECT_TRUE(rc.found);
}

}  // namespace
}  // namespace mdmesh
