#include "bounds/broadcast.h"

#include <gtest/gtest.h>

namespace mdmesh {
namespace {

TEST(BroadcastTest, TrivialCases) {
  Topology topo(2, 8, Wrap::kMesh);
  EXPECT_EQ(SteinerLowerBound(topo, {}), 0);
  EXPECT_EQ(SteinerLowerBound(topo, {5}), 0);
}

TEST(BroadcastTest, TwoTerminalsIsTheirDistance) {
  // For two points the bounding-box semi-perimeter IS the L1 distance.
  Topology topo(2, 8, Wrap::kMesh);
  for (ProcId a : {ProcId{0}, ProcId{13}, ProcId{42}}) {
    for (ProcId b : {ProcId{7}, ProcId{21}, ProcId{63}}) {
      EXPECT_EQ(SteinerLowerBound(topo, {a, b}), topo.Dist(a, b));
    }
  }
}

TEST(BroadcastTest, BoundingBoxOnAxisAlignedSet) {
  // Corners of a 4x3 box: semi-perimeter 4 + 3 = 7.
  Topology topo(2, 8, Wrap::kMesh);
  Point p{};
  auto id = [&](int x, int y) {
    p[0] = x;
    p[1] = y;
    return topo.Id(p);
  };
  EXPECT_EQ(SteinerLowerBound(topo, {id(1, 2), id(5, 2), id(1, 5), id(5, 5)}), 7);
}

TEST(BroadcastTest, StarBoundDominatesForDenseClusters) {
  // 9 terminals packed in a 2x2 box: box bound 2, star bound 8.
  Topology topo(2, 8, Wrap::kMesh);
  std::vector<ProcId> terminals;
  Point p{};
  for (int x = 0; x < 3; ++x) {
    for (int y = 0; y < 3; ++y) {
      p[0] = x;
      p[1] = y;
      terminals.push_back(topo.Id(p));
    }
  }
  EXPECT_EQ(SteinerLowerBound(topo, terminals), 8);
}

TEST(BroadcastTest, TorusRoutesAroundTheGap) {
  // Terminals at ring positions 0 and 6 on an 8-ring: mesh span 6, torus
  // span 2 (going the short way).
  Topology mesh(1, 8, Wrap::kMesh);
  Topology torus(1, 8, Wrap::kTorus);
  EXPECT_EQ(SteinerLowerBound(mesh, {0, 6}), 6);
  EXPECT_EQ(SteinerLowerBound(torus, {0, 6}), 2);
}

TEST(BroadcastTest, TorusFullRingHasNoGapToSkip) {
  Topology torus(1, 8, Wrap::kTorus);
  std::vector<ProcId> all{0, 1, 2, 3, 4, 5, 6, 7};
  // Largest gap is 1 => span 7 (a Hamiltonian path around the ring).
  EXPECT_EQ(SteinerLowerBound(torus, all), 7);
}

TEST(BroadcastTest, LowerBoundsActualTreeOnSamples) {
  // The bound must not exceed the length of an explicit spanning
  // construction (star from the first terminal).
  Topology topo(3, 5, Wrap::kMesh);
  std::vector<ProcId> terminals{3, 57, 88, 120, 14};
  std::int64_t star_length = 0;
  for (std::size_t i = 1; i < terminals.size(); ++i) {
    star_length += topo.Dist(terminals[0], terminals[i]);
  }
  EXPECT_LE(SteinerLowerBound(topo, terminals), star_length);
}

TEST(BroadcastTest, CopySpreadStepBoundScales) {
  Topology topo(2, 16, Wrap::kMesh);
  // spread = n: every packet leaves copies n apart => steps >= N*n/links.
  // links = 2*2*256*15/16 = 960; N*spread = 256*16 = 4096 => 4096/960.
  const double bound = CopySpreadStepBound(topo, 16);
  EXPECT_NEAR(bound, 4096.0 / 960.0, 1e-9);
  // Doubling the spread doubles the bound.
  EXPECT_NEAR(CopySpreadStepBound(topo, 32), 2.0 * bound, 1e-9);
}

}  // namespace
}  // namespace mdmesh
