// Sparse active-set engine path vs the dense full-mesh sweep. The two
// traversal modes (and the fused pipeline vs the checker's two-phase step)
// must be byte-identical: same step counts, same move counts, same final
// queue contents *in the same order*, for any thread count, with or
// without a fault plan. These tests pin that contract and the kAuto
// crossover behavior.
#include <gtest/gtest.h>

#include <tuple>
#include <vector>

#include "fault/fault_plan.h"
#include "net/engine.h"
#include "obs/probe.h"
#include "routing/permutations.h"
#include "routing/two_phase.h"
#include "util/rng.h"
#include "util/thread_pool.h"

namespace mdmesh {
namespace {

Packet MakePacket(std::int64_t id, ProcId dest, std::uint16_t klass = 0) {
  Packet pkt;
  pkt.id = id;
  pkt.key = static_cast<std::uint64_t>(id);
  pkt.dest = dest;
  pkt.klass = klass;
  return pkt;
}

void FillPermutation(Network& net, const std::vector<ProcId>& dest,
                     int classes) {
  std::int64_t id = 0;
  for (ProcId p = 0; p < net.topo().size(); ++p) {
    net.Add(p, MakePacket(id, dest[static_cast<std::size_t>(p)],
                          static_cast<std::uint16_t>(
                              id % (classes > 0 ? classes : 1))));
    ++id;
  }
}

/// Byte-level view of a network: per processor, the (key, id, dest,
/// arrived, flags) tuples *in queue order*. Stricter than the differential
/// tests' sorted canonical form — sparse and dense must agree on ordering
/// too, since the commit pass appends incomers in canonical link order
/// either way.
using Ordered = std::vector<std::vector<
    std::tuple<std::uint64_t, std::int64_t, ProcId, std::int32_t,
               std::uint16_t>>>;

Ordered OrderedSnapshot(const Network& net) {
  Ordered snap(static_cast<std::size_t>(net.topo().size()));
  for (ProcId p = 0; p < net.topo().size(); ++p) {
    for (const Packet& pkt : net.At(p)) {
      snap[static_cast<std::size_t>(p)].emplace_back(
          pkt.key, pkt.id, pkt.dest, pkt.arrived, pkt.flags);
    }
  }
  return snap;
}

struct RunOutput {
  RouteResult result;
  Ordered snapshot;
};

RunOutput RunOnce(const Topology& topo, const Network& initial,
                  EngineOptions opts) {
  Network net = initial;
  Engine engine(topo, opts);
  RunOutput out;
  out.result = engine.Route(net);
  out.snapshot = OrderedSnapshot(net);
  return out;
}

void ExpectSameRun(const RunOutput& a, const RunOutput& b) {
  EXPECT_EQ(a.result.steps, b.result.steps);
  EXPECT_EQ(a.result.moves, b.result.moves);
  EXPECT_EQ(a.result.max_queue, b.result.max_queue);
  EXPECT_EQ(a.result.packets, b.result.packets);
  EXPECT_EQ(a.result.completed, b.result.completed);
  EXPECT_EQ(a.result.max_overshoot, b.result.max_overshoot);
  EXPECT_EQ(a.result.detours, b.result.detours);
  EXPECT_EQ(a.snapshot, b.snapshot);
}

EngineOptions Opts(SparseMode mode, double threshold = 0.5) {
  EngineOptions opts;
  opts.sparse = mode;
  opts.sparse_threshold = threshold;
  opts.invariants = InvariantMode::kOff;  // exercise the fused pipeline
  return opts;
}

class SparseVsDenseTest
    : public ::testing::TestWithParam<std::tuple<int, int, Wrap>> {};

TEST_P(SparseVsDenseTest, AllModesAgreeOnPermutations) {
  auto [d, n, wrap] = GetParam();
  Topology topo(d, n, wrap);
  Rng rng(static_cast<std::uint64_t>(17 * d + n));
  std::vector<std::vector<ProcId>> perms = {
      ReversalPermutation(topo), TransposePermutation(topo),
      RandomPermutation(topo, rng)};
  for (const auto& dest : perms) {
    Network net(topo);
    FillPermutation(net, dest, d);
    const RunOutput dense = RunOnce(topo, net, Opts(SparseMode::kNever));
    const RunOutput sparse = RunOnce(topo, net, Opts(SparseMode::kAlways));
    const RunOutput hybrid = RunOnce(topo, net, Opts(SparseMode::kAuto));
    EXPECT_TRUE(dense.result.completed);
    EXPECT_EQ(dense.result.sparse_steps, 0);
    EXPECT_EQ(sparse.result.sparse_steps, sparse.result.steps);
    ExpectSameRun(dense, sparse);
    ExpectSameRun(dense, hybrid);
  }
}

INSTANTIATE_TEST_SUITE_P(Workloads, SparseVsDenseTest,
                         ::testing::Values(std::tuple{1, 16, Wrap::kMesh},
                                           std::tuple{2, 8, Wrap::kMesh},
                                           std::tuple{2, 8, Wrap::kTorus},
                                           std::tuple{3, 4, Wrap::kMesh},
                                           std::tuple{3, 4, Wrap::kTorus},
                                           std::tuple{4, 3, Wrap::kMesh}));

TEST(SparseVsDenseTest, IdenticalAtEveryThreadCount) {
  Topology topo(2, 12, Wrap::kTorus);
  Rng rng(7);
  Network net(topo);
  FillPermutation(net, RandomPermutation(topo, rng), 2);
  const RunOutput serial = RunOnce(topo, net, Opts(SparseMode::kNever));
  for (unsigned workers : {0u, 2u, 8u}) {
    ThreadPool pool(workers);
    for (SparseMode mode :
         {SparseMode::kNever, SparseMode::kAlways, SparseMode::kAuto}) {
      EngineOptions opts = Opts(mode);
      opts.pool = &pool;
      ExpectSameRun(serial, RunOnce(topo, net, opts));
    }
  }
}

TEST(SparseVsDenseTest, IdenticalUnderFaults) {
  Topology topo(2, 10, Wrap::kTorus);
  FaultSpec spec;
  spec.link_rate = 0.02;
  spec.flap_rate = 0.02;
  const FaultPlan plan = FaultPlan::Random(topo, spec, /*seed=*/11);
  Rng rng(11);
  Network net(topo);
  FillPermutation(net, RandomPermutation(topo, rng), 2);
  ThreadPool pool(4);
  RunOutput dense;
  bool first = true;
  for (SparseMode mode :
       {SparseMode::kNever, SparseMode::kAlways, SparseMode::kAuto}) {
    for (ThreadPool* p : {static_cast<ThreadPool*>(nullptr), &pool}) {
      EngineOptions opts = Opts(mode);
      opts.faults = &plan;
      opts.pool = p;
      RunOutput out = RunOnce(topo, net, opts);
      EXPECT_TRUE(out.result.completed);
      if (first) {
        dense = out;
        first = false;
      } else {
        ExpectSameRun(dense, out);
      }
    }
  }
  EXPECT_GT(dense.result.detours, 0);  // the plan actually forced rerouting
}

TEST(SparseVsDenseTest, AutoCrossesOverMidRun) {
  // A full permutation starts at occupancy 1.0 (dense) and drains below
  // the 0.5 default threshold partway through: kAuto must run *both*
  // paths in one Route call and still match the dense-only run.
  Topology topo(2, 24, Wrap::kMesh);
  Network net(topo);
  FillPermutation(net, ReversalPermutation(topo), 2);
  const RunOutput dense = RunOnce(topo, net, Opts(SparseMode::kNever));
  const RunOutput hybrid = RunOnce(topo, net, Opts(SparseMode::kAuto));
  EXPECT_GT(hybrid.result.sparse_steps, 0);
  EXPECT_LT(hybrid.result.sparse_steps, hybrid.result.steps);
  ExpectSameRun(dense, hybrid);
}

TEST(SparseVsDenseTest, ThresholdExtremes) {
  Topology topo(2, 12, Wrap::kMesh);
  Network net(topo);
  FillPermutation(net, ReversalPermutation(topo), 2);
  const RunOutput never_sparse =
      RunOnce(topo, net, Opts(SparseMode::kAuto, /*threshold=*/0.0));
  EXPECT_EQ(never_sparse.result.sparse_steps, 0);
  const RunOutput eager =
      RunOnce(topo, net, Opts(SparseMode::kAuto, /*threshold=*/1.0));
  EXPECT_EQ(eager.result.sparse_steps, eager.result.steps);
  ExpectSameRun(never_sparse, eager);
}

TEST(SparseVsDenseTest, CheckerPathMatchesFusedPipeline) {
  // InvariantMode::kOn forces the unfused two-phase step (bid, CheckSlots,
  // commit); kOff runs the fused pipeline. Same results either way — with
  // the per-step invariant checker validating the sparse run as it goes.
  Topology topo(3, 5, Wrap::kMesh);
  Rng rng(23);
  Network net(topo);
  FillPermutation(net, RandomPermutation(topo, rng), 3);
  FaultSpec spec;
  spec.link_rate = 0.01;
  const FaultPlan plan = FaultPlan::Random(topo, spec, /*seed=*/5);
  for (const FaultPlan* faults :
       {static_cast<const FaultPlan*>(nullptr), &plan}) {
    RunOutput fused;
    bool first = true;
    for (InvariantMode inv : {InvariantMode::kOff, InvariantMode::kOn}) {
      for (SparseMode mode : {SparseMode::kNever, SparseMode::kAlways}) {
        EngineOptions opts = Opts(mode);
        opts.invariants = inv;
        opts.faults = faults;
        RunOutput out = RunOnce(topo, net, opts);
        if (first) {
          fused = out;
          first = false;
        } else {
          ExpectSameRun(fused, out);
        }
      }
    }
  }
}

TEST(SparseVsDenseTest, TwoPhaseRoutingAgrees) {
  // End-to-end through the Section 5 two-phase router, including the
  // overlapped variant (two-leg packets retarget mid-flight, which
  // exercises the midpoint rewrite inside the sparse commit pass).
  Topology topo(2, 16, Wrap::kMesh);
  const std::vector<ProcId> dest = ReversalPermutation(topo);
  for (bool overlap : {false, true}) {
    TwoPhaseOptions base;
    base.g = 4;
    base.overlap = overlap;
    base.engine.invariants = InvariantMode::kOff;
    base.engine.sparse = SparseMode::kNever;
    TwoPhaseOptions sparse = base;
    sparse.engine.sparse = SparseMode::kAlways;
    const TwoPhaseResult a = RouteTwoPhase(topo, dest, base);
    const TwoPhaseResult b = RouteTwoPhase(topo, dest, sparse);
    EXPECT_TRUE(a.delivered);
    EXPECT_TRUE(b.delivered);
    EXPECT_EQ(a.total_steps, b.total_steps);
    EXPECT_EQ(a.max_queue, b.max_queue);
    EXPECT_EQ(a.phase1.steps, b.phase1.steps);
    EXPECT_EQ(a.phase2.steps, b.phase2.steps);
    EXPECT_EQ(a.phase1.moves, b.phase1.moves);
    EXPECT_EQ(a.phase2.moves, b.phase2.moves);
  }
}

/// Captures the per-step active-set size reported through StepSnapshot.
class ActiveProcsProbe final : public StepProbe {
 public:
  void OnStep(const StepSnapshot& snapshot) override {
    active.push_back(snapshot.active_procs);
  }
  std::vector<std::int64_t> active;
};

TEST(SparseVsDenseTest, ProbeReportsActiveSetSizeOnlyWhenSparse) {
  Topology topo(2, 12, Wrap::kMesh);
  Network net(topo);
  FillPermutation(net, ReversalPermutation(topo), 2);
  {
    ActiveProcsProbe probe;
    EngineOptions opts = Opts(SparseMode::kNever);
    opts.probe = &probe;
    RunOnce(topo, net, opts);
    for (std::int64_t a : probe.active) EXPECT_EQ(a, -1);
  }
  {
    ActiveProcsProbe probe;
    EngineOptions opts = Opts(SparseMode::kAlways);
    opts.probe = &probe;
    Network run = net;
    Engine engine(topo, opts);
    engine.Route(run);
    ASSERT_FALSE(probe.active.empty());
    for (std::int64_t a : probe.active) EXPECT_GE(a, 0);
    // The set shrinks to nothing as the drain completes.
    EXPECT_EQ(probe.active.back(), 0);
    EXPECT_GT(probe.active.front(), 0);
  }
}

TEST(SparseVsDenseTest, EngineRecoversAfterAbortedRun) {
  // Abort mid-flight via a tiny step cap: the pipeline has speculative
  // next-step bids already scattered into the mailbox. A subsequent Route
  // on the same engine must not see them (stale deliveries would
  // duplicate packets) and must finish the job.
  Topology topo(2, 12, Wrap::kMesh);
  Network net(topo);
  FillPermutation(net, ReversalPermutation(topo), 2);
  for (SparseMode mode : {SparseMode::kNever, SparseMode::kAlways}) {
    Network run = net;
    EngineOptions opts = Opts(mode);
    opts.step_cap = 3;
    Engine engine(topo, opts);
    RouteResult first = engine.Route(run);
    EXPECT_FALSE(first.completed);
    EXPECT_EQ(run.TotalPackets(), topo.size());
    RouteResult second = engine.Route(run);
    EXPECT_FALSE(second.completed);  // cap 3 is still too small
    RouteResult third;
    do {
      third = engine.Route(run);
    } while (!third.completed);
    EXPECT_EQ(run.TotalPackets(), topo.size());
    std::int64_t misplaced = 0;
    run.ForEach([&](ProcId p, const Packet& pkt) {
      if (pkt.dest != p) ++misplaced;
    });
    EXPECT_EQ(misplaced, 0);
  }
}

TEST(SparseVsDenseTest, ReusedEngineMatchesFreshEngine) {
  // Per-call state (mailbox parity buffers, active set, scratch) must
  // fully reset between Route calls on one Engine instance.
  Topology topo(2, 10, Wrap::kTorus);
  Rng rng(41);
  const std::vector<ProcId> first = RandomPermutation(topo, rng);
  const std::vector<ProcId> second = ReversalPermutation(topo);
  EngineOptions opts = Opts(SparseMode::kAuto);
  Engine reused(topo, opts);
  Network warmup(topo);
  FillPermutation(warmup, first, 2);
  reused.Route(warmup);
  Network via_reused(topo);
  FillPermutation(via_reused, second, 2);
  const RouteResult r1 = reused.Route(via_reused);
  Network via_fresh(topo);
  FillPermutation(via_fresh, second, 2);
  Engine fresh(topo, opts);
  const RouteResult r2 = fresh.Route(via_fresh);
  EXPECT_EQ(r1.steps, r2.steps);
  EXPECT_EQ(r1.moves, r2.moves);
  EXPECT_EQ(OrderedSnapshot(via_reused), OrderedSnapshot(via_fresh));
}

}  // namespace
}  // namespace mdmesh
