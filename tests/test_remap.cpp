#include "sorting/remap.h"

#include <gtest/gtest.h>

#include <memory>
#include <tuple>

#include "sorting/verify.h"

namespace mdmesh {
namespace {

class RemapTest
    : public ::testing::TestWithParam<std::tuple<const char*, int, int, int>> {};

TEST_P(RemapTest, SortIntoSchemeEndsSortedUnderIt) {
  auto [name, d, n, k] = GetParam();
  Topology topo(d, n, Wrap::kMesh);
  BlockGrid grid(topo, 2);
  auto scheme = MakeIndexing(name, d, n, n / 2);
  Network net(topo);
  FillInput(net, grid, k, InputKind::kRandom, 307);
  GroundTruth truth = CaptureGroundTruth(net);
  SortOptions opts;
  opts.g = 2;
  opts.k = k;
  SortResult result = SortIntoScheme(SortAlgo::kSimple, net, grid, *scheme, opts);
  EXPECT_TRUE(result.sorted) << name;
  EXPECT_TRUE(IsSortedUnderScheme(net, topo, *scheme, k)) << name;
  EXPECT_EQ(CaptureGroundTruth(net), truth) << name;
  // The remap phase exists and is a single routing pass <= D + slack.
  ASSERT_FALSE(result.phases.empty());
  EXPECT_EQ(result.phases.back().name, "remap");
  EXPECT_LE(result.phases.back().max_distance, topo.Diameter());
}

INSTANTIATE_TEST_SUITE_P(
    Schemes, RemapTest,
    ::testing::Values(std::tuple{"row-major", 2, 8, 1},
                      std::tuple{"row-major", 2, 16, 1},
                      std::tuple{"row-major", 3, 8, 1},
                      std::tuple{"snake", 2, 8, 1},
                      std::tuple{"morton", 2, 16, 1},
                      std::tuple{"hilbert", 2, 16, 1},
                      std::tuple{"row-major", 2, 8, 2},
                      std::tuple{"blocked-row-major", 2, 8, 1}));

TEST(RemapTest, IdentityRemapIsFree) {
  // Remapping into the SAME blocked snake the sort produced costs 0 steps.
  Topology topo(2, 8, Wrap::kMesh);
  BlockGrid grid(topo, 2);
  Network net(topo);
  FillInput(net, grid, 1, InputKind::kRandom, 311);
  SortOptions opts;
  opts.g = 2;
  SortResult sorted = RunSort(SortAlgo::kSimple, net, grid, opts);
  ASSERT_TRUE(sorted.sorted);
  RouteResult remap = RemapToScheme(net, grid, grid.indexing(), 1);
  EXPECT_EQ(remap.steps, 0);
  EXPECT_TRUE(remap.completed);
}

TEST(RemapTest, IsSortedUnderSchemeDetectsWrongScheme) {
  // Output sorted under blocked-snake is generally NOT sorted under
  // row-major (that is the whole point of the remap).
  Topology topo(2, 8, Wrap::kMesh);
  BlockGrid grid(topo, 2);
  Network net(topo);
  FillInput(net, grid, 1, InputKind::kRandom, 313);
  SortOptions opts;
  opts.g = 2;
  SortResult sorted = RunSort(SortAlgo::kSimple, net, grid, opts);
  ASSERT_TRUE(sorted.sorted);
  RowMajorIndexing rm(2, 8);
  EXPECT_FALSE(IsSortedUnderScheme(net, topo, rm, 1));
  EXPECT_TRUE(IsSortedUnderScheme(net, topo, grid.indexing(), 1));
}

TEST(RemapTest, HilbertIsHamiltonianAndBijective) {
  HilbertIndexing idx(2, 8);
  Topology topo(2, 8, Wrap::kMesh);
  std::vector<bool> seen(static_cast<std::size_t>(topo.size()), false);
  Point prev{};
  for (std::int64_t t = 0; t < topo.size(); ++t) {
    Point p = idx.PointAt(t);
    const std::int64_t back = idx.Index(p);
    EXPECT_EQ(back, t);
    const ProcId id = topo.Id(p);
    EXPECT_FALSE(seen[static_cast<std::size_t>(id)]);
    seen[static_cast<std::size_t>(id)] = true;
    if (t > 0) {
      EXPECT_EQ(topo.DistCoords(prev, p), 1)
          << "hilbert breaks between " << t - 1 << " and " << t;
    }
    prev = p;
  }
}

TEST(RemapTest, HilbertSubsquaresContiguous) {
  HilbertIndexing idx(2, 8);
  for (int qx = 0; qx < 2; ++qx) {
    for (int qy = 0; qy < 2; ++qy) {
      std::int64_t lo = 64;
      std::int64_t hi = -1;
      for (int x = 0; x < 4; ++x) {
        for (int y = 0; y < 4; ++y) {
          Point p{};
          p[0] = qx * 4 + x;
          p[1] = qy * 4 + y;
          const std::int64_t t = idx.Index(p);
          lo = std::min(lo, t);
          hi = std::max(hi, t);
        }
      }
      EXPECT_EQ(hi - lo + 1, 16);
    }
  }
}

TEST(RemapTest, HilbertRequires2DPowerOfTwo) {
  EXPECT_THROW(HilbertIndexing(3, 8), std::invalid_argument);
  EXPECT_THROW(HilbertIndexing(2, 6), std::invalid_argument);
  EXPECT_THROW(MakeIndexing("hilbert", 2, 12, 0), std::invalid_argument);
}

}  // namespace
}  // namespace mdmesh
