#include "routing/offline.h"

#include <gtest/gtest.h>

#include "net/engine.h"
#include "routing/greedy.h"
#include "routing/permutations.h"
#include "routing/two_phase.h"
#include "util/rng.h"

namespace mdmesh {
namespace {

TEST(OfflineBoundTest, IdentityIsZero) {
  Topology topo(2, 8, Wrap::kMesh);
  OfflineBound b = ComputeOfflineBound(topo, IdentityPermutation(topo));
  EXPECT_EQ(b.distance, 0);
  EXPECT_EQ(b.congestion, 0);
  EXPECT_EQ(b.bound(), 0);
}

TEST(OfflineBoundTest, ReversalDistanceIsDiameter) {
  Topology topo(2, 8, Wrap::kMesh);
  OfflineBound b = ComputeOfflineBound(topo, ReversalPermutation(topo));
  EXPECT_EQ(b.distance, topo.Diameter());
  // Reversal moves every packet across the central cut: N/2 packets over
  // n links => congestion n/2.
  EXPECT_EQ(b.congestion, 4);
}

TEST(OfflineBoundTest, CongestionCountsCutCrossings) {
  // 1D shift-to-the-right-half: every left packet crosses the middle.
  Topology topo(1, 8, Wrap::kMesh);
  std::vector<ProcId> dest = {4, 5, 6, 7, 0, 1, 2, 3};  // swap halves
  OfflineBound b = ComputeOfflineBound(topo, dest);
  EXPECT_EQ(b.distance, 4);
  EXPECT_EQ(b.congestion, 4);  // 4 packets each way over 1 link
  EXPECT_EQ(b.worst_cut_dim, 0);
}

TEST(OfflineBoundTest, TorusHalvesTheCongestion) {
  // The same half-swap on a ring can use both ways around: 4 packets over
  // 2 seams.
  Topology topo(1, 8, Wrap::kTorus);
  std::vector<ProcId> dest = {4, 5, 6, 7, 0, 1, 2, 3};
  OfflineBound b = ComputeOfflineBound(topo, dest);
  EXPECT_EQ(b.distance, 4);
  EXPECT_EQ(b.congestion, 2);
}

TEST(OfflineBoundTest, BoundIsMaxOfTerms) {
  OfflineBound b;
  b.distance = 10;
  b.congestion = 7;
  EXPECT_EQ(b.bound(), 10);
  b.congestion = 12;
  EXPECT_EQ(b.bound(), 12);
}

TEST(OfflineBoundTest, NeverExceedsMeasuredGreedyTime) {
  // Soundness: the offline bound is a lower bound for every router,
  // including our greedy engine.
  for (Wrap wrap : {Wrap::kMesh, Wrap::kTorus}) {
    Topology topo(2, 8, wrap);
    Rng rng(7);
    for (int trial = 0; trial < 5; ++trial) {
      auto dest = RandomPermutation(topo, rng);
      OfflineBound lb = ComputeOfflineBound(topo, dest);
      GreedyOptions opts;
      GreedyRun run = RouteOnePermutation(topo, dest, opts);
      ASSERT_TRUE(run.route.completed);
      EXPECT_LE(lb.bound(), run.route.steps) << "trial " << trial;
    }
  }
}

TEST(OfflineBoundTest, NeverExceedsTwoPhaseTime) {
  Topology topo(2, 16, Wrap::kMesh);
  for (auto dest : {ReversalPermutation(topo), TransposePermutation(topo)}) {
    OfflineBound lb = ComputeOfflineBound(topo, dest);
    TwoPhaseOptions opts;
    opts.g = 2;
    TwoPhaseResult r = RouteTwoPhase(topo, dest, opts);
    ASSERT_TRUE(r.delivered);
    EXPECT_LE(lb.bound(), r.total_steps);
  }
}

TEST(OfflineBoundTest, TransposeCongestionOnMesh) {
  // Transpose swaps the halves above/below the diagonal; the central
  // column cut sees ~N/4 crossings each way over n links.
  Topology topo(2, 16, Wrap::kMesh);
  OfflineBound b = ComputeOfflineBound(topo, TransposePermutation(topo));
  EXPECT_GE(b.congestion, 16 / 4);
  EXPECT_LE(b.congestion, 16);
}

}  // namespace
}  // namespace mdmesh
