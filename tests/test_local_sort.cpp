#include "sorting/local_sort.h"

#include <gtest/gtest.h>

#include "sorting/verify.h"
#include "util/rng.h"

namespace mdmesh {
namespace {

Network RandomNetwork(const Topology& topo, const BlockGrid& grid, int k,
                      std::uint64_t seed) {
  Network net(topo);
  Rng rng(seed);
  std::int64_t id = 0;
  for (ProcId p = 0; p < topo.size(); ++p) {
    for (int t = 0; t < k; ++t) {
      Packet pkt;
      pkt.key = rng.Next();
      pkt.id = id++;
      pkt.dest = p;
      net.Add(p, pkt);
    }
  }
  (void)grid;
  return net;
}

TEST(LocalSortTest, SortWithinBlockOrdersAlongSnake) {
  Topology topo(2, 8, Wrap::kMesh);
  BlockGrid grid(topo, 2);
  Network net = RandomNetwork(topo, grid, 1, 3);
  LocalSortSpec spec{1, nullptr};
  EXPECT_EQ(SortWithinBlock(net, grid, 0, spec), grid.block_volume());
  std::uint64_t prev = 0;
  for (std::int64_t off = 0; off < grid.block_volume(); ++off) {
    const auto& q = net.At(grid.ProcAt(0, off));
    ASSERT_EQ(q.size(), 1u);
    EXPECT_GE(q[0].key, prev);
    prev = q[0].key;
  }
}

TEST(LocalSortTest, OtherBlocksUntouched) {
  Topology topo(2, 8, Wrap::kMesh);
  BlockGrid grid(topo, 2);
  Network net = RandomNetwork(topo, grid, 1, 4);
  auto before = net.Gather();
  LocalSortSpec spec{1, nullptr};
  SortWithinBlock(net, grid, 0, spec);
  // Block 1..3 contents are identical.
  for (BlockId b = 1; b < grid.num_blocks(); ++b) {
    for (std::int64_t off = 0; off < grid.block_volume(); ++off) {
      const ProcId p = grid.ProcAt(b, off);
      ASSERT_EQ(net.At(p).size(), 1u);
      EXPECT_EQ(net.At(p)[0].id, before[static_cast<std::size_t>(p)].id);
    }
  }
}

TEST(LocalSortTest, FilterSortsOnlyMatching) {
  Topology topo(2, 4, Wrap::kMesh);
  BlockGrid grid(topo, 2);
  Network net(topo);
  // Two packets per processor of block 0: one flagged, one not.
  for (std::int64_t off = 0; off < grid.block_volume(); ++off) {
    const ProcId p = grid.ProcAt(0, off);
    Packet plain;
    plain.key = 1000 - static_cast<std::uint64_t>(off);
    plain.id = off;
    plain.dest = p;
    net.Add(p, plain);
    Packet flagged = plain;
    flagged.id = 100 + off;
    flagged.key = 500 - static_cast<std::uint64_t>(off);
    flagged.flags = Packet::kCopy;
    net.Add(p, flagged);
  }
  LocalSortSpec spec{1, [](const Packet& pkt) { return (pkt.flags & Packet::kCopy) != 0; }};
  SortWithinBlock(net, grid, 0, spec);
  // Flagged packets now ascend along the snake; plain ones untouched.
  std::uint64_t prev = 0;
  for (std::int64_t off = 0; off < grid.block_volume(); ++off) {
    const auto& q = net.At(grid.ProcAt(0, off));
    ASSERT_EQ(q.size(), 2u);
    const Packet& flagged = (q[0].flags & Packet::kCopy) ? q[0] : q[1];
    const Packet& plain = (q[0].flags & Packet::kCopy) ? q[1] : q[0];
    EXPECT_GE(flagged.key, prev);
    prev = flagged.key;
    EXPECT_EQ(plain.id, off);  // stayed put
  }
}

TEST(LocalSortTest, PerProcTwoPacksPairsOfRanks) {
  Topology topo(2, 4, Wrap::kMesh);
  BlockGrid grid(topo, 2);
  Network net(topo);
  for (std::int64_t off = 0; off < grid.block_volume(); ++off) {
    for (int t = 0; t < 2; ++t) {
      Packet pkt;
      pkt.key = 100 - static_cast<std::uint64_t>(2 * off + t);
      pkt.id = 2 * off + t;
      net.Add(grid.ProcAt(0, off), pkt);
    }
  }
  LocalSortSpec spec{2, nullptr};
  SortWithinBlock(net, grid, 0, spec);
  // Processor at offset `off` holds the sorted ranks {2*off, 2*off+1}:
  // with keys 100-t for t in [0,8), rank r has key 93+r.
  for (std::int64_t off = 0; off < grid.block_volume(); ++off) {
    const auto& q = net.At(grid.ProcAt(0, off));
    ASSERT_EQ(q.size(), 2u);
    const auto lo = std::min(q[0].key, q[1].key);
    const auto hi = std::max(q[0].key, q[1].key);
    EXPECT_EQ(lo, 93 + 2 * static_cast<std::uint64_t>(off));
    EXPECT_EQ(hi, lo + 1);
  }
}

TEST(LocalSortTest, SortBlocksLocallySortsAll) {
  Topology topo(2, 8, Wrap::kMesh);
  BlockGrid grid(topo, 2);
  Network net = RandomNetwork(topo, grid, 2, 5);
  LocalSortSpec spec{2, nullptr};
  const std::int64_t cost = SortBlocksLocally(net, grid, {}, spec, LocalCostModel::kOracle);
  EXPECT_EQ(cost, 0);
  for (BlockId b = 0; b < grid.num_blocks(); ++b) {
    std::uint64_t prev = 0;
    for (std::int64_t off = 0; off < grid.block_volume(); ++off) {
      const auto& q = net.At(grid.ProcAt(b, off));
      ASSERT_EQ(q.size(), 2u);
      const auto lo = std::min(q[0].key, q[1].key);
      const auto hi = std::max(q[0].key, q[1].key);
      EXPECT_GE(lo, prev);
      prev = hi;
    }
  }
}

TEST(LocalSortTest, CostModels) {
  Topology topo(2, 8, Wrap::kMesh);
  BlockGrid grid(topo, 2);
  {
    Network net = RandomNetwork(topo, grid, 1, 6);
    EXPECT_EQ(SortBlocksLocally(net, grid, {}, {1, nullptr}, LocalCostModel::kOracle), 0);
  }
  {
    Network net = RandomNetwork(topo, grid, 1, 6);
    EXPECT_EQ(SortBlocksLocally(net, grid, {}, {1, nullptr}, LocalCostModel::kLinear),
              4 * 2 * grid.block_side());
  }
  {
    Network net = RandomNetwork(topo, grid, 1, 6);
    const std::int64_t measured =
        SortBlocksLocally(net, grid, {}, {1, nullptr}, LocalCostModel::kMeasured);
    EXPECT_GT(measured, 0);
    EXPECT_LE(measured, grid.block_volume());  // odd-even sorts in <= L rounds
  }
}

TEST(LocalSortTest, OddEvenRoundsZeroForSorted) {
  std::vector<std::pair<std::uint64_t, std::int64_t>> keys;
  for (int i = 0; i < 16; ++i) keys.emplace_back(static_cast<std::uint64_t>(i), i);
  EXPECT_EQ(OddEvenTranspositionRounds(keys), 0);
}

TEST(LocalSortTest, OddEvenRoundsWorstCase) {
  std::vector<std::pair<std::uint64_t, std::int64_t>> keys;
  for (int i = 0; i < 16; ++i) keys.emplace_back(static_cast<std::uint64_t>(16 - i), i);
  const std::int64_t rounds = OddEvenTranspositionRounds(keys);
  EXPECT_GE(rounds, 14);  // reverse order needs ~L rounds
  EXPECT_LE(rounds, 16);
}

TEST(LocalSortTest, OddEvenRoundsTinyInputs) {
  EXPECT_EQ(OddEvenTranspositionRounds({}), 0);
  EXPECT_EQ(OddEvenTranspositionRounds({{5, 0}}), 0);
  EXPECT_EQ(OddEvenTranspositionRounds({{5, 0}, {3, 1}}), 1);
}

TEST(LocalSortTest, MergeAdjacentBlocksSortsPairUnions) {
  Topology topo(1, 8, Wrap::kMesh);
  BlockGrid grid(topo, 4);  // 4 blocks of 2 procs
  Network net(topo);
  // Descending keys along the line.
  for (ProcId p = 0; p < 8; ++p) {
    Packet pkt;
    pkt.key = static_cast<std::uint64_t>(8 - p);
    pkt.id = p;
    net.Add(p, pkt);
  }
  MergeAdjacentBlocks(net, grid, 0, 1, LocalCostModel::kOracle);
  // Pairs (0,1) and (2,3) each sorted: positions 0..3 ascend, 4..7 ascend.
  for (ProcId p : {0, 1, 2, 4, 5, 6}) {
    EXPECT_LE(net.At(p)[0].key, net.At(p + 1)[0].key);
  }
}

}  // namespace
}  // namespace mdmesh
