#include "sorting/snake_sort.h"

#include <gtest/gtest.h>

#include <tuple>

#include "core/runner.h"
#include "sorting/kk_sort.h"

namespace mdmesh {
namespace {

class SnakeSortTest
    : public ::testing::TestWithParam<std::tuple<int, int, int, InputKind>> {};

TEST_P(SnakeSortTest, SortsCorrectly) {
  auto [d, n, k, input] = GetParam();
  Topology topo(d, n, Wrap::kMesh);
  BlockGrid grid(topo, 2);
  Network net(topo);
  FillInput(net, grid, k, input, 211);
  SortOptions opts;
  opts.g = 2;
  opts.k = k;
  SortResult result = RunSort(SortAlgo::kSnake, net, grid, opts);
  EXPECT_TRUE(result.sorted) << result.Summary(topo.Diameter());
  EXPECT_TRUE(result.completed);
  // Odd-even transposition sorts a chain of N positions in <= N rounds.
  EXPECT_LE(result.fixup_rounds, topo.size());
}

INSTANTIATE_TEST_SUITE_P(
    Cases, SnakeSortTest,
    ::testing::Values(std::tuple{1, 16, 1, InputKind::kRandom},
                      std::tuple{2, 8, 1, InputKind::kRandom},
                      std::tuple{2, 8, 1, InputKind::kSortedDesc},
                      std::tuple{2, 8, 1, InputKind::kAllEqual},
                      std::tuple{2, 8, 2, InputKind::kRandom},
                      std::tuple{3, 4, 1, InputKind::kRandom},
                      std::tuple{3, 4, 3, InputKind::kFewValues}));

TEST(SnakeSortTest, SortedInputTakesZeroRounds) {
  Topology topo(2, 8, Wrap::kMesh);
  BlockGrid grid(topo, 2);
  Network net(topo);
  FillInput(net, grid, 1, InputKind::kSortedAsc, 1);
  SortOptions opts;
  opts.g = 2;
  SortResult result = RunSort(SortAlgo::kSnake, net, grid, opts);
  EXPECT_TRUE(result.sorted);
  EXPECT_EQ(result.routing_steps, 0);
}

TEST(SnakeSortTest, ReverseInputNeedsAboutNRounds) {
  Topology topo(2, 8, Wrap::kMesh);
  BlockGrid grid(topo, 2);
  Network net(topo);
  FillInput(net, grid, 1, InputKind::kSortedDesc, 1);
  SortOptions opts;
  opts.g = 2;
  SortResult result = RunSort(SortAlgo::kSnake, net, grid, opts);
  ASSERT_TRUE(result.sorted);
  EXPECT_GE(result.routing_steps, topo.size() - 4);
}

TEST(SnakeSortTest, ClassicalBaselineIsFarSlowerThanSimpleSort) {
  // The gap the paper's algorithms close: Theta(N) vs Theta(dn).
  const MeshSpec spec{2, 16, Wrap::kMesh};
  SortOptions opts;
  opts.g = 2;
  opts.seed = 3;
  SortRow snake = RunSortExperiment(SortAlgo::kSnake, spec, opts);
  SortRow simple = RunSortExperiment(SortAlgo::kSimple, spec, opts);
  ASSERT_TRUE(snake.result.sorted);
  ASSERT_TRUE(simple.result.sorted);
  EXPECT_GT(snake.result.routing_steps, 3 * simple.result.routing_steps);
}

TEST(SnakeSortTest, HarnessIntegration) {
  EXPECT_EQ(ParseSortAlgo("snake"), SortAlgo::kSnake);
  EXPECT_STREQ(SortAlgoName(SortAlgo::kSnake), "SnakeSort");
}

}  // namespace
}  // namespace mdmesh
