#include "util/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <vector>

namespace mdmesh {
namespace {

TEST(ThreadPoolTest, SerialModeRunsEverything) {
  ThreadPool pool(0);
  std::vector<int> hit(100, 0);
  pool.ParallelFor(100, [&](std::int64_t b, std::int64_t e) {
    for (std::int64_t i = b; i < e; ++i) hit[static_cast<std::size_t>(i)]++;
  });
  for (int h : hit) EXPECT_EQ(h, 1);
}

TEST(ThreadPoolTest, ParallelCoversRangeExactlyOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hit(1000);
  pool.ParallelFor(1000, [&](std::int64_t b, std::int64_t e) {
    for (std::int64_t i = b; i < e; ++i) hit[static_cast<std::size_t>(i)]++;
  });
  for (auto& h : hit) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPoolTest, EmptyAndTinyRanges) {
  ThreadPool pool(4);
  int calls = 0;
  pool.ParallelFor(0, [&](std::int64_t, std::int64_t) { ++calls; });
  EXPECT_EQ(calls, 0);
  std::atomic<std::int64_t> sum{0};
  pool.ParallelFor(3, [&](std::int64_t b, std::int64_t e) {
    for (std::int64_t i = b; i < e; ++i) sum += i;
  });
  EXPECT_EQ(sum.load(), 3);
}

TEST(ThreadPoolTest, RepeatedInvocations) {
  ThreadPool pool(3);
  for (int round = 0; round < 50; ++round) {
    std::atomic<std::int64_t> sum{0};
    pool.ParallelFor(257, [&](std::int64_t b, std::int64_t e) {
      for (std::int64_t i = b; i < e; ++i) sum += i;
    });
    EXPECT_EQ(sum.load(), 257 * 256 / 2);
  }
}

TEST(ThreadPoolTest, ResultIndependentOfWorkerCount) {
  // The engine relies on this: identical partitioned computation regardless
  // of parallelism. Sum of squares into per-index slots, then reduce.
  auto run = [](unsigned workers) {
    ThreadPool pool(workers);
    std::vector<std::int64_t> out(512);
    pool.ParallelFor(512, [&](std::int64_t b, std::int64_t e) {
      for (std::int64_t i = b; i < e; ++i) out[static_cast<std::size_t>(i)] = i * i;
    });
    return std::accumulate(out.begin(), out.end(), std::int64_t{0});
  };
  EXPECT_EQ(run(0), run(1));
  EXPECT_EQ(run(0), run(4));
  EXPECT_EQ(run(0), run(7));
}

TEST(ThreadPoolTest, StagedDispatchBarriersBetweenStages) {
  // ParallelForStaged guarantees stage2 sees *everything* stage1 wrote in
  // any shard. Stage1 fills a table; stage2 sums the whole table (not just
  // its own shard) — without the internal barrier the sums would race.
  for (unsigned workers : {0u, 1u, 4u, 7u}) {
    ThreadPool pool(workers);
    constexpr std::int64_t kCount = 640;
    std::vector<std::int64_t> table(kCount, 0);
    std::vector<std::int64_t> sums(pool.ShardsFor(kCount), -1);
    pool.ParallelForStaged(
        kCount,
        [&](unsigned, std::int64_t b, std::int64_t e) {
          for (std::int64_t i = b; i < e; ++i)
            table[static_cast<std::size_t>(i)] = i;
        },
        [&](unsigned shard, std::int64_t, std::int64_t) {
          sums[shard] = std::accumulate(table.begin(), table.end(),
                                        std::int64_t{0});
        });
    for (std::int64_t s : sums) EXPECT_EQ(s, kCount * (kCount - 1) / 2);
  }
}

TEST(ThreadPoolTest, StagedDispatchShardsMatchShardsFor) {
  ThreadPool pool(4);
  constexpr std::int64_t kCount = 101;
  const auto shards = static_cast<std::int64_t>(pool.ShardsFor(kCount));
  const std::int64_t chunk = (kCount + shards - 1) / shards;
  std::atomic<int> bad{0};
  std::vector<std::atomic<int>> hits(kCount);
  pool.ParallelForStaged(
      kCount,
      [&](unsigned shard, std::int64_t b, std::int64_t e) {
        if (b != static_cast<std::int64_t>(shard) * chunk) ++bad;
        if (e > kCount || e < b) ++bad;
        for (std::int64_t i = b; i < e; ++i)
          hits[static_cast<std::size_t>(i)]++;
      },
      [&](unsigned, std::int64_t b, std::int64_t e) {
        for (std::int64_t i = b; i < e; ++i)
          hits[static_cast<std::size_t>(i)]++;
      });
  EXPECT_EQ(bad.load(), 0);
  for (auto& h : hits) EXPECT_EQ(h.load(), 2);
}

TEST(ThreadPoolTest, GlobalPoolIsUsable) {
  std::atomic<int> n{0};
  ThreadPool::Global().ParallelFor(10, [&](std::int64_t b, std::int64_t e) {
    n += static_cast<int>(e - b);
  });
  EXPECT_EQ(n.load(), 10);
}

}  // namespace
}  // namespace mdmesh
