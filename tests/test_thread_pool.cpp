#include "util/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <vector>

namespace mdmesh {
namespace {

TEST(ThreadPoolTest, SerialModeRunsEverything) {
  ThreadPool pool(0);
  std::vector<int> hit(100, 0);
  pool.ParallelFor(100, [&](std::int64_t b, std::int64_t e) {
    for (std::int64_t i = b; i < e; ++i) hit[static_cast<std::size_t>(i)]++;
  });
  for (int h : hit) EXPECT_EQ(h, 1);
}

TEST(ThreadPoolTest, ParallelCoversRangeExactlyOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hit(1000);
  pool.ParallelFor(1000, [&](std::int64_t b, std::int64_t e) {
    for (std::int64_t i = b; i < e; ++i) hit[static_cast<std::size_t>(i)]++;
  });
  for (auto& h : hit) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPoolTest, EmptyAndTinyRanges) {
  ThreadPool pool(4);
  int calls = 0;
  pool.ParallelFor(0, [&](std::int64_t, std::int64_t) { ++calls; });
  EXPECT_EQ(calls, 0);
  std::atomic<std::int64_t> sum{0};
  pool.ParallelFor(3, [&](std::int64_t b, std::int64_t e) {
    for (std::int64_t i = b; i < e; ++i) sum += i;
  });
  EXPECT_EQ(sum.load(), 3);
}

TEST(ThreadPoolTest, RepeatedInvocations) {
  ThreadPool pool(3);
  for (int round = 0; round < 50; ++round) {
    std::atomic<std::int64_t> sum{0};
    pool.ParallelFor(257, [&](std::int64_t b, std::int64_t e) {
      for (std::int64_t i = b; i < e; ++i) sum += i;
    });
    EXPECT_EQ(sum.load(), 257 * 256 / 2);
  }
}

TEST(ThreadPoolTest, ResultIndependentOfWorkerCount) {
  // The engine relies on this: identical partitioned computation regardless
  // of parallelism. Sum of squares into per-index slots, then reduce.
  auto run = [](unsigned workers) {
    ThreadPool pool(workers);
    std::vector<std::int64_t> out(512);
    pool.ParallelFor(512, [&](std::int64_t b, std::int64_t e) {
      for (std::int64_t i = b; i < e; ++i) out[static_cast<std::size_t>(i)] = i * i;
    });
    return std::accumulate(out.begin(), out.end(), std::int64_t{0});
  };
  EXPECT_EQ(run(0), run(1));
  EXPECT_EQ(run(0), run(4));
  EXPECT_EQ(run(0), run(7));
}

TEST(ThreadPoolTest, GlobalPoolIsUsable) {
  std::atomic<int> n{0};
  ThreadPool::Global().ParallelFor(10, [&](std::int64_t b, std::int64_t e) {
    n += static_cast<int>(e - b);
  });
  EXPECT_EQ(n.load(), 10);
}

}  // namespace
}  // namespace mdmesh
