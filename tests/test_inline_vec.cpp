#include "util/inline_vec.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>
#include <vector>

namespace mdmesh {
namespace {

TEST(InlineVecTest, StartsEmptyWithInlineCapacity) {
  InlineVec<int, 4> v;
  EXPECT_TRUE(v.empty());
  EXPECT_EQ(v.size(), 0u);
  EXPECT_EQ(v.capacity(), 4u);
}

TEST(InlineVecTest, PushWithinInlineCapacity) {
  InlineVec<int, 4> v;
  for (int i = 0; i < 4; ++i) v.push_back(i);
  EXPECT_EQ(v.size(), 4u);
  EXPECT_EQ(v.capacity(), 4u);  // still inline
  for (int i = 0; i < 4; ++i) EXPECT_EQ(v[static_cast<std::size_t>(i)], i);
}

TEST(InlineVecTest, SpillsToHeapAndPreservesContents) {
  InlineVec<int, 4> v;
  for (int i = 0; i < 100; ++i) v.push_back(i);
  EXPECT_EQ(v.size(), 100u);
  EXPECT_GE(v.capacity(), 100u);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(v[static_cast<std::size_t>(i)], i);
}

TEST(InlineVecTest, ClearKeepsCapacity) {
  InlineVec<int, 2> v;
  for (int i = 0; i < 50; ++i) v.push_back(i);
  const std::size_t cap = v.capacity();
  v.clear();
  EXPECT_TRUE(v.empty());
  EXPECT_EQ(v.capacity(), cap);
  v.push_back(7);
  EXPECT_EQ(v[0], 7);
}

TEST(InlineVecTest, PopBack) {
  InlineVec<int, 4> v;
  v.push_back(1);
  v.push_back(2);
  v.pop_back();
  EXPECT_EQ(v.size(), 1u);
  EXPECT_EQ(v.back(), 1);
}

TEST(InlineVecTest, ResizeValueInitializes) {
  InlineVec<int, 2> v;
  v.push_back(9);
  v.resize(6);
  EXPECT_EQ(v.size(), 6u);
  EXPECT_EQ(v[0], 9);
  for (std::size_t i = 1; i < 6; ++i) EXPECT_EQ(v[i], 0);
  v.resize(2);
  EXPECT_EQ(v.size(), 2u);
}

TEST(InlineVecTest, AssignFromRange) {
  std::vector<int> src{5, 6, 7, 8, 9, 10};
  InlineVec<int, 4> v;
  v.push_back(1);
  v.assign(src.begin(), src.end());
  EXPECT_EQ(v.size(), 6u);
  EXPECT_TRUE(std::equal(v.begin(), v.end(), src.begin()));
}

TEST(InlineVecTest, EraseRange) {
  InlineVec<int, 4> v;
  for (int i = 0; i < 8; ++i) v.push_back(i);
  v.erase(v.begin() + 2, v.begin() + 5);  // remove 2,3,4
  ASSERT_EQ(v.size(), 5u);
  const int expect[] = {0, 1, 5, 6, 7};
  for (std::size_t i = 0; i < 5; ++i) EXPECT_EQ(v[i], expect[i]);
  v.erase(v.begin(), v.begin());  // empty range is a no-op
  EXPECT_EQ(v.size(), 5u);
}

TEST(InlineVecTest, RemoveIfIdiom) {
  InlineVec<int, 4> v;
  for (int i = 0; i < 10; ++i) v.push_back(i);
  v.erase(std::remove_if(v.begin(), v.end(), [](int x) { return x % 2 == 0; }),
          v.end());
  ASSERT_EQ(v.size(), 5u);
  for (std::size_t i = 0; i < 5; ++i) EXPECT_EQ(v[i], static_cast<int>(2 * i + 1));
}

TEST(InlineVecTest, CopyInlineAndHeap) {
  InlineVec<int, 4> small;
  small.push_back(1);
  small.push_back(2);
  InlineVec<int, 4> small_copy = small;
  small[0] = 99;  // copies must be independent
  EXPECT_EQ(small_copy[0], 1);
  EXPECT_EQ(small_copy.size(), 2u);

  InlineVec<int, 4> big;
  for (int i = 0; i < 40; ++i) big.push_back(i);
  InlineVec<int, 4> big_copy = big;
  big[0] = 99;
  EXPECT_EQ(big_copy[0], 0);
  EXPECT_EQ(big_copy.size(), 40u);
}

TEST(InlineVecTest, CopyAssignOverwrites) {
  InlineVec<int, 2> a;
  a.push_back(1);
  InlineVec<int, 2> b;
  for (int i = 0; i < 20; ++i) b.push_back(i);
  a = b;
  EXPECT_EQ(a.size(), 20u);
  EXPECT_TRUE(std::equal(a.begin(), a.end(), b.begin()));
  b = a;  // heap-to-heap as well
  EXPECT_EQ(b.size(), 20u);
}

TEST(InlineVecTest, SelfAssignmentIsSafe) {
  InlineVec<int, 2> v;
  for (int i = 0; i < 10; ++i) v.push_back(i);
  v = *&v;
  EXPECT_EQ(v.size(), 10u);
  EXPECT_EQ(v[9], 9);
}

TEST(InlineVecTest, MoveStealsHeapBuffer) {
  InlineVec<int, 2> big;
  for (int i = 0; i < 30; ++i) big.push_back(i);
  const int* buffer = big.data();
  InlineVec<int, 2> moved = std::move(big);
  EXPECT_EQ(moved.data(), buffer);  // pointer stolen, no copy
  EXPECT_EQ(moved.size(), 30u);
  EXPECT_TRUE(big.empty());
}

TEST(InlineVecTest, MoveInlineCopies) {
  InlineVec<int, 4> small;
  small.push_back(3);
  InlineVec<int, 4> moved = std::move(small);
  EXPECT_EQ(moved.size(), 1u);
  EXPECT_EQ(moved[0], 3);
}

TEST(InlineVecTest, PushBackAliasingAnElementSurvivesGrowth) {
  // v.push_back(v[i]) exactly at a capacity boundary: growth frees the old
  // buffer, so the element must be copied out before the reallocation —
  // both on the inline-to-heap spill and on a later heap-to-heap regrow.
  InlineVec<int, 4> v;
  for (int i = 0; i < 4; ++i) v.push_back(i);
  ASSERT_EQ(v.size(), v.capacity());  // inline boundary
  v.push_back(v[0]);
  EXPECT_EQ(v.back(), 0);
  while (v.size() < v.capacity()) v.push_back(static_cast<int>(v.size()));
  const std::size_t heap_cap = v.capacity();
  v.push_back(v.back());  // heap boundary
  EXPECT_GT(v.capacity(), heap_cap);
  EXPECT_EQ(v.back(), v[v.size() - 2]);
}

TEST(InlineVecTest, ShrinkBackBelowInlineCountAfterSpill) {
  // Spill to the heap, shrink below the inline capacity, regrow: contents
  // stay correct and the heap buffer is retained (no shrink-to-inline
  // migration, so iterators from before the shrink stay valid).
  InlineVec<int, 4> v;
  for (int i = 0; i < 32; ++i) v.push_back(i);
  const std::size_t cap = v.capacity();
  const int* buf = v.data();
  v.resize(2);
  EXPECT_EQ(v.size(), 2u);
  EXPECT_EQ(v.capacity(), cap);
  EXPECT_EQ(v.data(), buf);
  EXPECT_EQ(v[0], 0);
  EXPECT_EQ(v[1], 1);
  v.resize(6);  // regrown elements are value-initialized
  for (std::size_t i = 2; i < 6; ++i) EXPECT_EQ(v[i], 0);
}

TEST(InlineVecTest, MoveAssignReleasesTheTargetsHeapBuffer) {
  InlineVec<int, 2> heap_target;
  for (int i = 0; i < 20; ++i) heap_target.push_back(i);
  InlineVec<int, 2> heap_source;
  for (int i = 100; i < 130; ++i) heap_source.push_back(i);
  const int* stolen = heap_source.data();
  heap_target = std::move(heap_source);
  EXPECT_EQ(heap_target.data(), stolen);  // buffer stolen, old one released
  EXPECT_EQ(heap_target.size(), 30u);
  EXPECT_EQ(heap_target[0], 100);
  EXPECT_TRUE(heap_source.empty());
  // Moved-from object is reusable and starts back on inline storage.
  heap_source.push_back(7);
  EXPECT_EQ(heap_source.size(), 1u);
  EXPECT_EQ(heap_source.capacity(), 2u);

  // Inline source into a heap target: contents copied, target back inline.
  InlineVec<int, 2> inline_source;
  inline_source.push_back(42);
  heap_target = std::move(inline_source);
  EXPECT_EQ(heap_target.size(), 1u);
  EXPECT_EQ(heap_target[0], 42);
  EXPECT_EQ(heap_target.capacity(), 2u);
}

TEST(InlineVecTest, CopyAssignHeapIntoInlineAndBack) {
  InlineVec<int, 2> heap;
  for (int i = 0; i < 12; ++i) heap.push_back(i);
  InlineVec<int, 2> inl;
  inl.push_back(5);
  heap = inl;  // heap target shrinks back to inline storage
  EXPECT_EQ(heap.size(), 1u);
  EXPECT_EQ(heap.capacity(), 2u);
  EXPECT_EQ(heap[0], 5);
  for (int i = 0; i < 12; ++i) inl.push_back(i);
  EXPECT_EQ(heap.size(), 1u);  // fully detached from its source
}

TEST(InlineVecTest, SelfMoveAssignmentIsSafe) {
  InlineVec<int, 2> v;
  for (int i = 0; i < 10; ++i) v.push_back(i);
  InlineVec<int, 2>& alias = v;
  v = std::move(alias);
  EXPECT_EQ(v.size(), 10u);
  EXPECT_EQ(v[9], 9);
}

TEST(InlineVecTest, EraseEverythingOnHeapThenRefill) {
  InlineVec<int, 2> v;
  for (int i = 0; i < 25; ++i) v.push_back(i);
  v.erase(v.begin(), v.end());
  EXPECT_TRUE(v.empty());
  EXPECT_GE(v.capacity(), 25u);  // buffer kept for the refill
  for (int i = 0; i < 25; ++i) v.push_back(-i);
  EXPECT_EQ(v[24], -24);
}

TEST(InlineVecTest, StdSortWorksOnIterators) {
  InlineVec<int, 4> v;
  for (int i = 0; i < 20; ++i) v.push_back(19 - i);
  std::sort(v.begin(), v.end());
  EXPECT_TRUE(std::is_sorted(v.begin(), v.end()));
  EXPECT_EQ(std::accumulate(v.begin(), v.end(), 0), 190);
}

TEST(InlineVecTest, Equality) {
  InlineVec<int, 2> a;
  InlineVec<int, 2> b;
  EXPECT_TRUE(a == b);
  a.push_back(1);
  EXPECT_FALSE(a == b);
  b.push_back(1);
  EXPECT_TRUE(a == b);
}

TEST(InlineVecTest, ReserveIsIdempotent) {
  InlineVec<int, 2> v;
  v.reserve(100);
  const std::size_t cap = v.capacity();
  EXPECT_GE(cap, 100u);
  v.reserve(10);
  EXPECT_EQ(v.capacity(), cap);
}

TEST(InlineVecTest, StressAgainstStdVector) {
  // Randomized differential test against std::vector<int>.
  InlineVec<int, 3> mine;
  std::vector<int> ref;
  std::uint64_t state = 12345;
  auto next = [&] {
    state = state * 6364136223846793005ull + 1442695040888963407ull;
    return state >> 33;
  };
  for (int op = 0; op < 5000; ++op) {
    switch (next() % 5) {
      case 0:
      case 1: {
        const int x = static_cast<int>(next() % 1000);
        mine.push_back(x);
        ref.push_back(x);
        break;
      }
      case 2:
        if (!ref.empty()) {
          mine.pop_back();
          ref.pop_back();
        }
        break;
      case 3: {
        const std::size_t want = next() % 10;
        mine.resize(want);
        ref.resize(want);
        break;
      }
      default:
        if (!ref.empty()) {
          const std::size_t at = next() % ref.size();
          mine.erase(mine.begin() + static_cast<std::ptrdiff_t>(at), mine.end());
          ref.erase(ref.begin() + static_cast<std::ptrdiff_t>(at), ref.end());
        }
        break;
    }
    ASSERT_EQ(mine.size(), ref.size()) << "op " << op;
    ASSERT_TRUE(std::equal(mine.begin(), mine.end(), ref.begin())) << "op " << op;
  }
}

}  // namespace
}  // namespace mdmesh
