#include "net/engine.h"

#include <gtest/gtest.h>

#include <tuple>

#include "sorting/verify.h"
#include "util/rng.h"

namespace mdmesh {
namespace {

Packet MakePacket(std::int64_t id, ProcId dest, std::uint16_t klass = 0) {
  Packet pkt;
  pkt.id = id;
  pkt.key = static_cast<std::uint64_t>(id);
  pkt.dest = dest;
  pkt.klass = klass;
  return pkt;
}

TEST(EngineTest, SinglePacketTravelsExactlyItsDistance) {
  Topology topo(2, 8, Wrap::kMesh);
  Engine engine(topo);
  Network net(topo);
  net.Add(0, MakePacket(0, topo.size() - 1));  // corner to corner
  RouteResult r = engine.Route(net);
  EXPECT_TRUE(r.completed);
  EXPECT_EQ(r.steps, topo.Diameter());
  EXPECT_EQ(r.max_overshoot, 0);
  EXPECT_EQ(r.moves, topo.Diameter());
  EXPECT_EQ(net.At(topo.size() - 1).size(), 1u);
}

TEST(EngineTest, PacketAlreadyHomeTakesZeroSteps) {
  Topology topo(2, 4, Wrap::kMesh);
  Engine engine(topo);
  Network net(topo);
  net.Add(5, MakePacket(0, 5));
  RouteResult r = engine.Route(net);
  EXPECT_TRUE(r.completed);
  EXPECT_EQ(r.steps, 0);
  EXPECT_EQ(net.At(5)[0].arrived, 0);
}

TEST(EngineTest, TorusUsesWraparound) {
  Topology topo(1, 8, Wrap::kTorus);
  Engine engine(topo);
  Network net(topo);
  net.Add(0, MakePacket(0, 7));  // one hop backwards through the wrap
  RouteResult r = engine.Route(net);
  EXPECT_TRUE(r.completed);
  EXPECT_EQ(r.steps, 1);
}

TEST(EngineTest, DimensionOrderRespected) {
  // A class-0 packet corrects dimension 0 first: from (0,0) to (2,2) it must
  // pass through (2,0). We detect this by checking the step count of a
  // second packet that blocks the dimension-0 lane.
  Topology topo(2, 4, Wrap::kMesh);
  Engine engine(topo);
  Network net(topo);
  Point target{};
  target[0] = 2;
  target[1] = 2;
  net.Add(0, MakePacket(0, topo.Id(target), /*klass=*/0));
  RouteResult r = engine.Route(net);
  EXPECT_EQ(r.steps, 4);
  EXPECT_TRUE(r.completed);
}

TEST(EngineTest, RotatedClassCorrectsHigherDimensionFirst) {
  // klass=1 on a 2D mesh corrects dimension 1 first, so two packets with
  // crossing paths but different classes never contend.
  Topology topo(2, 6, Wrap::kMesh);
  Engine engine(topo);
  Network net(topo);
  Point a{}, b{};
  a[0] = 5;  // (5, 0)
  b[1] = 5;  // (0, 5)
  net.Add(0, MakePacket(0, topo.Id(a), 0));
  net.Add(0, MakePacket(1, topo.Id(b), 1));
  RouteResult r = engine.Route(net);
  EXPECT_TRUE(r.completed);
  EXPECT_EQ(r.steps, 5);  // both leave in step 1 on different links
  EXPECT_EQ(r.max_overshoot, 0);
}

TEST(EngineTest, ContentionDelaysLoser) {
  // Two packets at the same processor want the same link; farthest-first
  // gives the link to the one with more distance to go.
  Topology topo(1, 8, Wrap::kMesh);
  Engine engine(topo);
  Network net(topo);
  net.Add(0, MakePacket(0, 3));  // shorter trip
  net.Add(0, MakePacket(1, 7));  // longer trip: wins the first step
  RouteResult r = engine.Route(net);
  EXPECT_TRUE(r.completed);
  EXPECT_EQ(r.steps, 7);  // the long packet is never delayed
  // The short packet left one step late: overshoot exactly 1.
  EXPECT_EQ(r.max_overshoot, 1);
}

TEST(EngineTest, FarthestFirstTieBreaksById) {
  Topology topo(1, 8, Wrap::kMesh);
  Engine engine(topo);
  Network net(topo);
  net.Add(0, MakePacket(7, 5));
  net.Add(0, MakePacket(3, 5));  // same distance, smaller id wins
  RouteResult r = engine.Route(net);
  EXPECT_TRUE(r.completed);
  // Winner arrives at step 5; loser trails one behind into the same dest.
  EXPECT_EQ(r.steps, 6);
}

TEST(EngineTest, ConservationOfPackets) {
  Topology topo(2, 6, Wrap::kMesh);
  Engine engine(topo);
  Network net(topo);
  Rng rng(5);
  auto dest = rng.Permutation(topo.size());
  for (ProcId p = 0; p < topo.size(); ++p) {
    net.Add(p, MakePacket(p, dest[static_cast<std::size_t>(p)]));
  }
  const std::int64_t before = net.TotalPackets();
  RouteResult r = engine.Route(net);
  EXPECT_TRUE(r.completed);
  EXPECT_EQ(net.TotalPackets(), before);
  EXPECT_TRUE(VerifyAllDelivered(net));
}

class EnginePermutationTest
    : public ::testing::TestWithParam<std::tuple<int, int, Wrap>> {};

TEST_P(EnginePermutationTest, RandomPermutationDelivers) {
  auto [d, n, wrap] = GetParam();
  Topology topo(d, n, wrap);
  Engine engine(topo);
  Network net(topo);
  Rng rng(static_cast<std::uint64_t>(d * 100 + n));
  auto dest = rng.Permutation(topo.size());
  for (ProcId p = 0; p < topo.size(); ++p) {
    Packet pkt = MakePacket(p, dest[static_cast<std::size_t>(p)]);
    pkt.klass = static_cast<std::uint16_t>(p % d);
    net.Add(p, pkt);
  }
  RouteResult r = engine.Route(net);
  EXPECT_TRUE(r.completed);
  EXPECT_TRUE(VerifyAllDelivered(net));
  EXPECT_LE(r.steps, 3 * topo.Diameter() + 16);  // no pathological blowup
  EXPECT_GE(r.steps, r.max_distance);            // cannot beat distance
}

INSTANTIATE_TEST_SUITE_P(Sizes, EnginePermutationTest,
                         ::testing::Values(std::tuple{1, 16, Wrap::kMesh},
                                           std::tuple{2, 8, Wrap::kMesh},
                                           std::tuple{2, 8, Wrap::kTorus},
                                           std::tuple{3, 5, Wrap::kMesh},
                                           std::tuple{3, 6, Wrap::kTorus},
                                           std::tuple{4, 4, Wrap::kMesh}));

TEST(EngineTest, StepCapReportsIncomplete) {
  Topology topo(2, 8, Wrap::kMesh);
  EngineOptions opts;
  opts.step_cap = 2;  // far too small for a corner-to-corner trip
  Engine engine(topo, opts);
  Network net(topo);
  net.Add(0, MakePacket(0, topo.size() - 1));
  RouteResult r = engine.Route(net);
  EXPECT_FALSE(r.completed);
  EXPECT_EQ(r.steps, 2);
}

TEST(EngineTest, DeterministicAcrossRuns) {
  Topology topo(2, 8, Wrap::kMesh);
  auto run = [&] {
    Engine engine(topo);
    Network net(topo);
    Rng rng(77);
    auto dest = rng.Permutation(topo.size());
    for (ProcId p = 0; p < topo.size(); ++p) {
      net.Add(p, MakePacket(p, dest[static_cast<std::size_t>(p)]));
    }
    return engine.Route(net).steps;
  };
  EXPECT_EQ(run(), run());
}

TEST(EngineTest, DeterministicAcrossThreadCounts) {
  Topology topo(2, 8, Wrap::kMesh);
  auto run = [&](unsigned workers) {
    ThreadPool pool(workers);
    EngineOptions opts;
    opts.pool = &pool;
    Engine engine(topo, opts);
    Network net(topo);
    Rng rng(78);
    auto dest = rng.Permutation(topo.size());
    for (ProcId p = 0; p < topo.size(); ++p) {
      net.Add(p, MakePacket(p, dest[static_cast<std::size_t>(p)]));
    }
    RouteResult r = engine.Route(net);
    return std::tuple{r.steps, r.moves, r.max_queue};
  };
  EXPECT_EQ(run(0), run(4));
}

TEST(EngineTest, QueueGrowthIsTracked) {
  // Funnel: everyone targets one processor; max_queue must reach N-ish.
  Topology topo(1, 8, Wrap::kMesh);
  Engine engine(topo);
  Network net(topo);
  for (ProcId p = 0; p < topo.size(); ++p) net.Add(p, MakePacket(p, 0));
  RouteResult r = engine.Route(net);
  EXPECT_TRUE(r.completed);
  EXPECT_EQ(r.max_queue, topo.size());
}

}  // namespace
}  // namespace mdmesh
