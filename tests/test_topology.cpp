#include "meshsim/topology.h"

#include <gtest/gtest.h>

#include <tuple>

namespace mdmesh {
namespace {

TEST(TopologyTest, SizesAndDiameters) {
  Topology mesh(3, 4, Wrap::kMesh);
  EXPECT_EQ(mesh.size(), 64);
  EXPECT_EQ(mesh.Diameter(), 9);  // d(n-1) = 3*3
  Topology torus(3, 4, Wrap::kTorus);
  EXPECT_EQ(torus.Diameter(), 6);  // d*floor(n/2) = 3*2
  Topology odd(2, 5, Wrap::kTorus);
  EXPECT_EQ(odd.Diameter(), 4);  // 2*floor(5/2)
}

TEST(TopologyTest, CoordsIdRoundTrip) {
  for (auto [d, n] : {std::pair{1, 7}, std::pair{2, 5}, std::pair{3, 4}, std::pair{4, 3}}) {
    Topology topo(d, n, Wrap::kMesh);
    for (ProcId p = 0; p < topo.size(); ++p) {
      EXPECT_EQ(topo.Id(topo.Coords(p)), p);
    }
  }
}

TEST(TopologyTest, CoordConvention) {
  // Dimension 0 is least significant.
  Topology topo(2, 4, Wrap::kMesh);
  Point c = topo.Coords(5);  // 5 = 1 + 4*1
  EXPECT_EQ(c[0], 1);
  EXPECT_EQ(c[1], 1);
  c = topo.Coords(7);  // 7 = 3 + 4*1
  EXPECT_EQ(c[0], 3);
  EXPECT_EQ(c[1], 1);
}

TEST(TopologyTest, MeshNeighborsRespectBoundary) {
  Topology topo(2, 3, Wrap::kMesh);
  // Corner (0,0) = id 0.
  EXPECT_EQ(topo.Neighbor(0, 0, 0), -1);
  EXPECT_EQ(topo.Neighbor(0, 1, 0), -1);
  EXPECT_EQ(topo.Neighbor(0, 0, 1), 1);
  EXPECT_EQ(topo.Neighbor(0, 1, 1), 3);
  // Center (1,1) = id 4 has all four.
  EXPECT_EQ(topo.Neighbor(4, 0, 0), 3);
  EXPECT_EQ(topo.Neighbor(4, 0, 1), 5);
  EXPECT_EQ(topo.Neighbor(4, 1, 0), 1);
  EXPECT_EQ(topo.Neighbor(4, 1, 1), 7);
}

TEST(TopologyTest, TorusNeighborsWrap) {
  Topology topo(2, 3, Wrap::kTorus);
  EXPECT_EQ(topo.Neighbor(0, 0, 0), 2);  // (0,0) -> (2,0)
  EXPECT_EQ(topo.Neighbor(0, 1, 0), 6);  // (0,0) -> (0,2)
  EXPECT_EQ(topo.Neighbor(2, 0, 1), 0);  // (2,0) -> (0,0)
}

TEST(TopologyTest, NeighborsAreSymmetric) {
  for (Wrap wrap : {Wrap::kMesh, Wrap::kTorus}) {
    Topology topo(3, 4, wrap);
    for (ProcId p = 0; p < topo.size(); ++p) {
      for (int dim = 0; dim < 3; ++dim) {
        for (int dir = 0; dir < 2; ++dir) {
          ProcId q = topo.Neighbor(p, dim, dir);
          if (q < 0) continue;
          EXPECT_EQ(topo.Neighbor(q, dim, 1 - dir), p);
          EXPECT_EQ(topo.Dist(p, q), 1);
        }
      }
    }
  }
}

TEST(TopologyTest, DistMatchesCoordsDist) {
  for (Wrap wrap : {Wrap::kMesh, Wrap::kTorus}) {
    Topology topo(3, 5, wrap);
    for (ProcId a = 0; a < topo.size(); a += 7) {
      for (ProcId b = 0; b < topo.size(); b += 5) {
        EXPECT_EQ(topo.Dist(a, b), topo.DistCoords(topo.Coords(a), topo.Coords(b)));
        EXPECT_EQ(topo.Dist(a, b), topo.Dist(b, a));
        EXPECT_LE(topo.Dist(a, b), topo.Diameter());
      }
    }
  }
}

TEST(TopologyTest, DistTriangleInequalityOnSamples) {
  Topology topo(2, 6, Wrap::kTorus);
  for (ProcId a = 0; a < topo.size(); a += 3) {
    for (ProcId b = 0; b < topo.size(); b += 4) {
      for (ProcId c = 0; c < topo.size(); c += 5) {
        EXPECT_LE(topo.Dist(a, c), topo.Dist(a, b) + topo.Dist(b, c));
      }
    }
  }
}

TEST(TopologyTest, DiameterIsAttained) {
  Topology mesh(2, 4, Wrap::kMesh);
  std::int64_t best = 0;
  for (ProcId a = 0; a < mesh.size(); ++a) {
    for (ProcId b = 0; b < mesh.size(); ++b) best = std::max(best, mesh.Dist(a, b));
  }
  EXPECT_EQ(best, mesh.Diameter());

  Topology torus(2, 4, Wrap::kTorus);
  best = 0;
  for (ProcId a = 0; a < torus.size(); ++a) {
    for (ProcId b = 0; b < torus.size(); ++b) best = std::max(best, torus.Dist(a, b));
  }
  EXPECT_EQ(best, torus.Diameter());
}

TEST(TopologyTest, StepTowardMesh) {
  Topology topo(1, 8, Wrap::kMesh);
  EXPECT_EQ(topo.StepToward(2, 5), 1);
  EXPECT_EQ(topo.StepToward(5, 2), -1);
  EXPECT_EQ(topo.StepToward(3, 3), 0);
}

TEST(TopologyTest, StepTowardTorusShorterWay) {
  Topology topo(1, 8, Wrap::kTorus);
  EXPECT_EQ(topo.StepToward(0, 1), 1);
  EXPECT_EQ(topo.StepToward(0, 7), -1);   // wrap backwards is shorter
  EXPECT_EQ(topo.StepToward(0, 4), 1);    // exact tie resolves to +1
  EXPECT_EQ(topo.StepToward(6, 1), 1);    // forward through the wrap
}

TEST(TopologyTest, StepTowardConsistentAlongPath) {
  // Repeatedly stepping must reach the target in exactly Dist steps.
  Topology topo(1, 9, Wrap::kTorus);
  for (int from = 0; from < 9; ++from) {
    for (int to = 0; to < 9; ++to) {
      int cur = from;
      std::int64_t steps = 0;
      while (cur != to) {
        cur = static_cast<int>(Mod(cur + topo.StepToward(cur, to), 9));
        ++steps;
        ASSERT_LE(steps, 9);
      }
      Point a{}, b{};
      a[0] = from;
      b[0] = to;
      EXPECT_EQ(steps, topo.DistCoords(a, b));
    }
  }
}

TEST(TopologyTest, CoordTableMatchesCoords) {
  Topology topo(3, 4, Wrap::kMesh);
  auto table = topo.BuildCoordTable();
  ASSERT_EQ(table.size(), static_cast<std::size_t>(topo.size() * 3));
  for (ProcId p = 0; p < topo.size(); ++p) {
    Point c = topo.Coords(p);
    for (int i = 0; i < 3; ++i) {
      EXPECT_EQ(table[static_cast<std::size_t>(p * 3 + i)], c[static_cast<std::size_t>(i)]);
    }
  }
}

TEST(TopologyTest, MirrorIsInvolutionAndPreservesCenterDistance) {
  Topology topo(3, 5, Wrap::kMesh);
  for (ProcId p = 0; p < topo.size(); ++p) {
    EXPECT_EQ(topo.Mirror(topo.Mirror(p)), p);
  }
  EXPECT_EQ(topo.Mirror(0), topo.size() - 1);  // corner maps to corner
}

TEST(TopologyTest, AntipodeProperties) {
  Topology topo(2, 8, Wrap::kTorus);
  for (ProcId p = 0; p < topo.size(); ++p) {
    ProcId a = topo.Antipode(p);
    EXPECT_EQ(topo.Antipode(a), p);                 // involution (even n)
    EXPECT_EQ(topo.Dist(p, a), topo.Diameter());    // farthest point
  }
}

TEST(TopologyTest, RingAntipodeSplitsDistanceExactly) {
  // On a ring of even n: dist(p,x) + dist(p, antipode(x)) == n/2, the
  // geometric fact behind TorusSort's Lemma 3.4.
  Topology topo(1, 10, Wrap::kTorus);
  for (ProcId x = 0; x < 10; ++x) {
    ProcId ax = topo.Antipode(x);
    for (ProcId p = 0; p < 10; ++p) {
      EXPECT_EQ(topo.Dist(p, x) + topo.Dist(p, ax), 5);
    }
  }
}

}  // namespace
}  // namespace mdmesh
