#include "obs/perf_counters.h"

#include <gtest/gtest.h>

#include <string>

#include "obs/json.h"
#include "obs/trace.h"

namespace mdmesh {
namespace {

// Hardware counters are opt-in and environment-dependent (VMs and
// containers routinely deny perf_event_open), so these tests pin the
// *contract*: every consumer keeps working whether Open() succeeds or not,
// and when it succeeds the readings are sane.

TEST(PerfSampleTest, DeltaRespectsUnavailableEvents) {
  PerfSample a, b;
  a.cycles = 1000;
  a.instructions = 2000;
  b.cycles = 400;
  b.instructions = 500;
  // cache/branch misses stay -1 on both sides.
  const PerfSample d = a.DeltaFrom(b);
  EXPECT_EQ(d.cycles, 600);
  EXPECT_EQ(d.instructions, 1500);
  EXPECT_EQ(d.cache_misses, -1);
  EXPECT_EQ(d.branch_misses, -1);
  EXPECT_TRUE(d.any());
  EXPECT_DOUBLE_EQ(d.ipc(), 2.5);
}

TEST(PerfSampleTest, IpcGuardsDegenerateInputs) {
  PerfSample s;
  EXPECT_FALSE(s.any());
  EXPECT_LT(s.ipc(), 0.0);  // nothing available
  s.cycles = 0;
  s.instructions = 10;
  EXPECT_LT(s.ipc(), 0.0);  // zero cycles
  s.cycles = 5;
  s.instructions = -1;
  EXPECT_LT(s.ipc(), 0.0);  // instructions unavailable
}

TEST(PerfCountersTest, SupportedMatchesPlatform) {
#if defined(__linux__)
  EXPECT_TRUE(PerfCounters::Supported());
#else
  EXPECT_FALSE(PerfCounters::Supported());
#endif
}

TEST(PerfCountersTest, OpenEitherWorksOrDegradesWithDiagnostic) {
  PerfCounters pc;
  const bool ok = pc.Open();
  if (!ok) {
    // Denied (non-Linux, hardened kernel, or no PMU): the error says why
    // and reads report "unavailable" instead of garbage.
    EXPECT_FALSE(pc.active());
    EXPECT_FALSE(pc.error().empty());
    EXPECT_FALSE(pc.Read().any());
    return;
  }
  ASSERT_TRUE(pc.active());
  EXPECT_TRUE(pc.error().empty());
  EXPECT_TRUE(pc.Open());  // idempotent
  // Burn some cycles so the totals move; readings are running totals, so
  // a later read of an available event can never be smaller.
  const PerfSample before = pc.Read();
  ASSERT_TRUE(before.any());
  volatile std::int64_t sink = 0;
  for (int i = 0; i < 2000000; ++i) sink = sink + i;
  const PerfSample after = pc.Read();
  const PerfSample delta = after.DeltaFrom(before);
  if (after.cycles >= 0) EXPECT_GE(delta.cycles, 0);
  if (after.instructions >= 0) {
    EXPECT_GT(delta.instructions, 0);  // the loop retired instructions
  }
  pc.Close();
  EXPECT_FALSE(pc.active());
  EXPECT_FALSE(pc.Read().any());
}

TEST(PerfCountersTest, TraceSpansCarryDeltasWhenEnabled) {
  TraceContext ctx;
  const bool enabled = ctx.EnablePerfCounters();
  {
    Span span = ctx.Open("hot-loop");
    volatile std::int64_t sink = 0;
    for (int i = 0; i < 1000000; ++i) sink = sink + i;
    span.Close();
  }
  ASSERT_EQ(ctx.nodes().size(), 2u);
  const TraceContext::Node& node = ctx.nodes()[1];
  if (enabled) {
    EXPECT_TRUE(ctx.perf_enabled());
    EXPECT_TRUE(node.perf.any());
    // The span JSON gains a perf object.
    EXPECT_NE(ctx.ToJson().find("\"perf\""), std::string::npos);
  } else {
    // Degraded: spans still close, JSON still renders, no perf key.
    EXPECT_FALSE(ctx.perf_enabled());
    EXPECT_FALSE(node.perf.any());
    EXPECT_EQ(ctx.ToJson().find("\"perf\""), std::string::npos);
    EXPECT_FALSE(ctx.perf_error().empty());
  }
  EXPECT_GT(node.end_ms, 0.0);
}

TEST(PerfCountersTest, NestedSpansEachGetTheirOwnDelta) {
  TraceContext ctx;
  if (!ctx.EnablePerfCounters()) {
    GTEST_SKIP() << "perf counters unavailable: " << ctx.perf_error();
  }
  {
    Span outer = ctx.Open("outer");
    volatile std::int64_t sink = 0;
    for (int i = 0; i < 500000; ++i) sink = sink + i;
    {
      Span inner = ctx.Open("inner");
      for (int i = 0; i < 500000; ++i) sink = sink + i;
      inner.Close();
    }
    outer.Close();
  }
  const auto& nodes = ctx.nodes();
  ASSERT_EQ(nodes.size(), 3u);
  const TraceContext::Node& outer = nodes[1];
  const TraceContext::Node& inner = nodes[2];
  ASSERT_TRUE(outer.perf.any());
  ASSERT_TRUE(inner.perf.any());
  // Counters are running thread totals differenced per span, so the outer
  // window contains the inner one event-for-event.
  if (outer.perf.instructions >= 0 && inner.perf.instructions >= 0) {
    EXPECT_GE(outer.perf.instructions, inner.perf.instructions);
  }
}

}  // namespace
}  // namespace mdmesh
