// Checkpoint/restore: resume determinism, file-format integrity, and the
// keep-K manager.
//
// The central contract (net/engine_state.h): resuming from a checkpoint
// taken at any step S reproduces the uninterrupted run byte-for-byte —
// same step/move counts, same final queue contents in the same order, same
// delivery trace — for meshes and tori in 2 and 3 dimensions, sparse or
// dense traversal, serial or threaded, with or without fault-induced
// detours, and for injector-driven runs checkpointed mid-warmup or
// mid-measure. The corruption suite pins the other half of the robustness
// story: a truncated, bit-flipped, version-bumped, or wrong-configuration
// checkpoint is rejected with a structured status, never crashes, and
// never resumes silently.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <tuple>
#include <vector>

#include "ckpt/checkpoint.h"
#include "ckpt/manager.h"
#include "core/config.h"
#include "fault/fault_plan.h"
#include "net/engine.h"
#include "net/network.h"
#include "routing/permutations.h"
#include "util/crc32.h"
#include "util/rng.h"
#include "util/thread_pool.h"
#include "workload/driver.h"
#include "workload/patterns.h"

namespace mdmesh {
namespace {

Packet MakePacket(std::int64_t id, ProcId dest, std::uint16_t klass = 0) {
  Packet pkt;
  pkt.id = id;
  pkt.key = static_cast<std::uint64_t>(id);
  pkt.dest = dest;
  pkt.klass = klass;
  return pkt;
}

void FillPermutation(Network& net, const std::vector<ProcId>& dest,
                     int classes) {
  std::int64_t id = 0;
  for (ProcId p = 0; p < net.topo().size(); ++p) {
    net.Add(p, MakePacket(id, dest[static_cast<std::size_t>(p)],
                          static_cast<std::uint16_t>(
                              id % (classes > 0 ? classes : 1))));
    ++id;
  }
}

/// Byte-level view of a network: per processor, packets in queue order.
using Ordered = std::vector<std::vector<
    std::tuple<std::uint64_t, std::int64_t, ProcId, std::int32_t,
               std::uint16_t>>>;

Ordered OrderedSnapshot(const Network& net) {
  Ordered snap(static_cast<std::size_t>(net.topo().size()));
  for (ProcId p = 0; p < net.topo().size(); ++p) {
    for (const Packet& pkt : net.At(p)) {
      snap[static_cast<std::size_t>(p)].emplace_back(
          pkt.key, pkt.id, pkt.dest, pkt.arrived, pkt.flags);
    }
  }
  return snap;
}

struct RunOutput {
  RouteResult result;
  Ordered snapshot;
};

void ExpectSameRun(const RunOutput& a, const RunOutput& b) {
  EXPECT_EQ(a.result.steps, b.result.steps);
  EXPECT_EQ(a.result.moves, b.result.moves);
  EXPECT_EQ(a.result.max_queue, b.result.max_queue);
  EXPECT_EQ(a.result.packets, b.result.packets);
  EXPECT_EQ(a.result.completed, b.result.completed);
  EXPECT_EQ(a.result.max_overshoot, b.result.max_overshoot);
  EXPECT_EQ(a.result.detours, b.result.detours);
  EXPECT_EQ(a.snapshot, b.snapshot);
}

/// Test sink: snapshots at the requested steps, records every (state,
/// cause) pair.
class CaptureSink final : public CheckpointSink {
 public:
  explicit CaptureSink(std::vector<std::int64_t> at = {})
      : at_(std::move(at)) {}

  bool Due(std::int64_t step) override {
    return std::find(at_.begin(), at_.end(), step) != at_.end();
  }
  void Save(const EngineCheckpointState& state, const char* cause) override {
    states_.push_back(state);
    causes_.emplace_back(cause);
  }

  const std::vector<EngineCheckpointState>& states() const { return states_; }
  const std::vector<std::string>& causes() const { return causes_; }

 private:
  std::vector<std::int64_t> at_;
  std::vector<EngineCheckpointState> states_;
  std::vector<std::string> causes_;
};

// ---------------------------------------------------------------------------
// Resume determinism: static permutation runs.

/// Routes a permutation on `spec` under (sparse mode, worker count,
/// optional faults); checkpoints at several mid-run steps; asserts that
/// (a) attaching the sink did not change the run and (b) resuming from
/// every captured snapshot finishes byte-identical to the baseline.
void ExpectResumeMatchesBaseline(const MeshSpec& spec, const FaultPlan* plan,
                                 SparseMode sparse, unsigned workers) {
  SCOPED_TRACE(std::string(spec.ToString()) +
               (plan != nullptr ? " +faults" : "") +
               " sparse=" + std::to_string(static_cast<int>(sparse)) +
               " workers=" + std::to_string(workers));
  const Topology topo = spec.Build();
  ThreadPool pool(workers);
  EngineOptions opts;
  opts.sparse = sparse;
  opts.pool = &pool;
  opts.faults = plan;

  Network initial(topo);
  Rng rng(99);
  FillPermutation(initial, RandomPermutation(topo, rng), topo.dim());

  RunOutput baseline;
  {
    Network net = initial;
    Engine engine(topo, opts);
    baseline.result = engine.Route(net);
    baseline.snapshot = OrderedSnapshot(net);
  }
  ASSERT_TRUE(baseline.result.completed);
  ASSERT_GE(baseline.result.steps, 3);

  std::vector<std::int64_t> at = {1, baseline.result.steps / 2,
                                  baseline.result.steps - 1};
  at.erase(std::unique(at.begin(), at.end()), at.end());
  CaptureSink sink(at);
  EngineOptions sink_opts = opts;
  sink_opts.checkpoint = &sink;
  RunOutput with_sink;
  {
    Network net = initial;
    Engine engine(topo, sink_opts);
    with_sink.result = engine.Route(net);
    with_sink.snapshot = OrderedSnapshot(net);
  }
  // Checkpointing must be invisible in the results (it only forces the
  // unfused loop, which is byte-identical to the fused one).
  ExpectSameRun(with_sink, baseline);
  ASSERT_EQ(sink.states().size(), at.size());

  for (const EngineCheckpointState& state : sink.states()) {
    SCOPED_TRACE("resume from step " + std::to_string(state.step));
    Network net(topo);
    Engine engine(topo, opts);
    RunOutput resumed;
    resumed.result = engine.Resume(net, state);
    resumed.snapshot = OrderedSnapshot(net);
    ExpectSameRun(resumed, baseline);
  }
}

TEST(CkptResumeTest, Mesh2DGreedySerialDense) {
  ExpectResumeMatchesBaseline({2, 6, Wrap::kMesh}, nullptr, SparseMode::kNever,
                              0);
}

TEST(CkptResumeTest, Mesh2DGreedyThreadedSparse) {
  ExpectResumeMatchesBaseline({2, 6, Wrap::kMesh}, nullptr, SparseMode::kAlways,
                              4);
}

TEST(CkptResumeTest, Mesh3DGreedyAutoSerial) {
  ExpectResumeMatchesBaseline({3, 4, Wrap::kMesh}, nullptr, SparseMode::kAuto,
                              0);
}

TEST(CkptResumeTest, Mesh3DGreedyAutoThreaded) {
  ExpectResumeMatchesBaseline({3, 4, Wrap::kMesh}, nullptr, SparseMode::kAuto,
                              4);
}

TEST(CkptResumeTest, Torus2DGreedySerial) {
  ExpectResumeMatchesBaseline({2, 6, Wrap::kTorus}, nullptr, SparseMode::kAuto,
                              0);
}

TEST(CkptResumeTest, Torus3DGreedyThreaded) {
  ExpectResumeMatchesBaseline({3, 4, Wrap::kTorus}, nullptr, SparseMode::kAuto,
                              4);
}

/// Faulted torus: permanent dead links force adaptive detours and wrong-way
/// lock bits; flap events exercise the fault-cursor replay on resume.
FaultPlan DetourPlan(const Topology& topo) {
  FaultPlan plan(topo);
  plan.KillLinkPair(0, 0, 1);
  plan.KillLinkPair(topo.size() / 2, 1, 0);
  plan.AddFlap(1, 0, 0, /*start=*/2, /*duration=*/6);
  plan.AddFlap(topo.size() / 3, 1, 1, /*start=*/5, /*duration=*/4);
  return plan;
}

TEST(CkptResumeTest, Torus2DDetourUnderFaultsSerial) {
  const MeshSpec spec{2, 6, Wrap::kTorus};
  const Topology topo = spec.Build();
  const FaultPlan plan = DetourPlan(topo);
  ExpectResumeMatchesBaseline(spec, &plan, SparseMode::kAuto, 0);
}

TEST(CkptResumeTest, Torus2DDetourUnderFaultsThreaded) {
  const MeshSpec spec{2, 6, Wrap::kTorus};
  const Topology topo = spec.Build();
  const FaultPlan plan = DetourPlan(topo);
  ExpectResumeMatchesBaseline(spec, &plan, SparseMode::kAuto, 4);
}

TEST(CkptResumeTest, Torus3DDetourUnderFaultsThreadedDense) {
  const MeshSpec spec{3, 4, Wrap::kTorus};
  const Topology topo = spec.Build();
  const FaultPlan plan = DetourPlan(topo);
  ExpectResumeMatchesBaseline(spec, &plan, SparseMode::kNever, 4);
}

TEST(CkptResumeTest, StepCapAbortEmitsResumableCheckpoint) {
  const MeshSpec spec{2, 8, Wrap::kMesh};
  const Topology topo = spec.Build();
  Network initial(topo);
  Rng rng(7);
  FillPermutation(initial, RandomPermutation(topo, rng), topo.dim());

  CaptureSink sink;  // never due on cadence — only the abort path fires
  EngineOptions opts;
  opts.step_cap = 3;
  opts.checkpoint = &sink;
  Network net = initial;
  Engine engine(topo, opts);
  const RouteResult r = engine.Route(net);
  ASSERT_FALSE(r.completed);
  ASSERT_EQ(sink.states().size(), 1u);
  EXPECT_EQ(sink.causes()[0], "step_cap");
  EXPECT_EQ(sink.states()[0].step, 3);
}

// ---------------------------------------------------------------------------
// Resume determinism: open-loop injector runs.

void ExpectInjectorResumeMatches(const MeshSpec& spec, unsigned workers,
                                 bool drain) {
  SCOPED_TRACE(std::string(spec.ToString()) +
               " workers=" + std::to_string(workers) +
               " drain=" + std::to_string(drain));
  const Topology topo = spec.Build();
  ThreadPool pool(workers);
  TrafficPattern pattern(topo, PatternKind::kUniform, 5);
  DriverOptions dopts;
  dopts.rate = 0.15;
  dopts.warmup_steps = 40;
  dopts.measure_steps = 120;
  dopts.drain = drain;
  dopts.seed = 11;
  EngineOptions eopts;
  eopts.pool = &pool;

  const WorkloadResult baseline = RunOpenLoop(topo, pattern, dopts, eopts);
  ASSERT_GT(baseline.delivered, 0);

  // Mid-warmup and mid-measure snapshots — both windows carry genuine
  // injector state (RNG position, cursors, and for mid-measure a partially
  // filled latency histogram).
  CaptureSink sink({10, 100});
  EngineOptions sink_opts = eopts;
  sink_opts.checkpoint = &sink;
  const WorkloadResult with_sink =
      RunOpenLoop(topo, pattern, dopts, sink_opts);
  EXPECT_EQ(with_sink.delivery_hash, baseline.delivery_hash);
  ASSERT_EQ(sink.states().size(), 2u);

  for (const EngineCheckpointState& state : sink.states()) {
    SCOPED_TRACE("resume from step " + std::to_string(state.step));
    const WorkloadResult resumed =
        RunOpenLoop(topo, pattern, dopts, eopts, &state);
    EXPECT_EQ(resumed.delivery_hash, baseline.delivery_hash);
    EXPECT_EQ(resumed.offered, baseline.offered);
    EXPECT_EQ(resumed.delivered, baseline.delivered);
    EXPECT_EQ(resumed.measured_injected, baseline.measured_injected);
    EXPECT_EQ(resumed.measured_delivered, baseline.measured_delivered);
    EXPECT_EQ(resumed.latency_count, baseline.latency_count);
    EXPECT_EQ(resumed.latency_p50, baseline.latency_p50);
    EXPECT_EQ(resumed.latency_p99, baseline.latency_p99);
    EXPECT_EQ(resumed.route.steps, baseline.route.steps);
    EXPECT_EQ(resumed.route.moves, baseline.route.moves);
    EXPECT_EQ(resumed.stable, baseline.stable);
  }
}

TEST(CkptInjectorResumeTest, Mesh2DSerialDrain) {
  ExpectInjectorResumeMatches({2, 8, Wrap::kMesh}, 0, /*drain=*/true);
}

TEST(CkptInjectorResumeTest, Mesh2DThreadedDrain) {
  ExpectInjectorResumeMatches({2, 8, Wrap::kMesh}, 4, /*drain=*/true);
}

TEST(CkptInjectorResumeTest, Torus3DSerialFixedHorizon) {
  ExpectInjectorResumeMatches({3, 4, Wrap::kTorus}, 0, /*drain=*/false);
}

TEST(CkptInjectorResumeTest, Torus3DThreadedDrain) {
  ExpectInjectorResumeMatches({3, 4, Wrap::kTorus}, 4, /*drain=*/true);
}

// ---------------------------------------------------------------------------
// Resume validation: structured refusals, no silent continuation.

EngineCheckpointState CaptureOneState(const Topology& topo,
                                      const EngineOptions& opts,
                                      std::int64_t at) {
  CaptureSink sink({at});
  EngineOptions sink_opts = opts;
  sink_opts.checkpoint = &sink;
  Network net(topo);
  Rng rng(3);
  FillPermutation(net, RandomPermutation(topo, rng), topo.dim());
  Engine engine(topo, sink_opts);
  engine.Route(net);
  EXPECT_EQ(sink.states().size(), 1u);
  return sink.states().empty() ? EngineCheckpointState{} : sink.states()[0];
}

TEST(CkptResumeValidationTest, RefusesTopologyShapeMismatch) {
  const Topology small = MeshSpec{2, 6, Wrap::kMesh}.Build();
  const EngineCheckpointState state = CaptureOneState(small, {}, 2);
  const Topology big = MeshSpec{2, 8, Wrap::kMesh}.Build();
  Engine engine(big, {});
  Network net(big);
  EXPECT_THROW(engine.Resume(net, state), std::invalid_argument);
}

TEST(CkptResumeValidationTest, RefusesWrapMismatch) {
  const Topology mesh = MeshSpec{2, 6, Wrap::kMesh}.Build();
  const EngineCheckpointState state = CaptureOneState(mesh, {}, 2);
  const Topology torus = MeshSpec{2, 6, Wrap::kTorus}.Build();
  Engine engine(torus, {});
  Network net(torus);
  EXPECT_THROW(engine.Resume(net, state), std::invalid_argument);
}

TEST(CkptResumeValidationTest, RefusesEngineOptionsMismatch) {
  const Topology topo = MeshSpec{2, 6, Wrap::kMesh}.Build();
  const EngineCheckpointState state = CaptureOneState(topo, {}, 2);
  EngineOptions other;
  other.step_cap = 12345;  // hashed into the manifest options hash
  Engine engine(topo, other);
  Network net(topo);
  EXPECT_THROW(engine.Resume(net, state), std::invalid_argument);
}

TEST(CkptResumeValidationTest, RefusesInjectorPresenceMismatch) {
  const Topology topo = MeshSpec{2, 6, Wrap::kMesh}.Build();
  const EngineCheckpointState state = CaptureOneState(topo, {}, 2);
  TrafficPattern pattern(topo, PatternKind::kUniform, 1);
  OpenLoopInjector injector(topo, pattern, {});
  EngineOptions with_injector;
  with_injector.injector = &injector;
  Engine engine(topo, with_injector);
  Network net(topo);
  EXPECT_THROW(engine.Resume(net, state), std::invalid_argument);
}

TEST(CkptResumeValidationTest, RefusesFaultCursorBeyondPlan) {
  const Topology topo = MeshSpec{2, 6, Wrap::kTorus}.Build();
  const FaultPlan plan = DetourPlan(topo);
  EngineOptions opts;
  opts.faults = &plan;
  EngineCheckpointState state = CaptureOneState(topo, opts, 2);
  state.fault_cursor = 1000;  // plan has only a handful of flap edges
  Engine engine(topo, opts);
  Network net(topo);
  EXPECT_THROW(engine.Resume(net, state), std::invalid_argument);
}

TEST(CkptResumeValidationTest, InjectorRejectsMalformedBlob) {
  const Topology topo = MeshSpec{2, 6, Wrap::kMesh}.Build();
  TrafficPattern pattern(topo, PatternKind::kUniform, 1);
  OpenLoopInjector injector(topo, pattern, {});
  const std::vector<std::uint8_t> garbage = {1, 2, 3};
  EXPECT_FALSE(injector.RestoreState(garbage.data(), garbage.size()));
  std::vector<std::uint8_t> blob;
  injector.SaveState(&blob);
  ASSERT_GT(blob.size(), 8u);
  EXPECT_TRUE(injector.RestoreState(blob.data(), blob.size()));
  // Truncation is detected even when the prefix parses.
  EXPECT_FALSE(injector.RestoreState(blob.data(), blob.size() - 5));
}

// ---------------------------------------------------------------------------
// File format: round-trip and the corruption suite.

EngineCheckpointState SampleState() {
  const Topology topo = MeshSpec{2, 6, Wrap::kMesh}.Build();
  return CaptureOneState(topo, {}, 2);
}

std::string TempPath(const std::string& name) {
  return testing::TempDir() + name;
}

std::vector<char> ReadAll(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::vector<char>((std::istreambuf_iterator<char>(in)),
                           std::istreambuf_iterator<char>());
}

void WriteAll(const std::string& path, const std::vector<char>& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

TEST(CkptFileTest, WriteReadRoundTrip) {
  const EngineCheckpointState state = SampleState();
  const std::string path = TempPath("roundtrip.mdc");
  std::string error;
  ASSERT_EQ(WriteCheckpointFile(path, state, &error), CkptStatus::kOk)
      << error;

  EngineCheckpointState loaded;
  ASSERT_EQ(ReadCheckpointFile(path, &loaded, nullptr, &error), CkptStatus::kOk)
      << error;
  EXPECT_EQ(loaded.step, state.step);
  EXPECT_EQ(loaded.options_hash, state.options_hash);
  EXPECT_EQ(loaded.in_flight, state.in_flight);
  EXPECT_EQ(loaded.arrivals_total, state.arrivals_total);
  ASSERT_EQ(loaded.queues.size(), state.queues.size());
  for (std::size_t p = 0; p < state.queues.size(); ++p) {
    ASSERT_EQ(loaded.queues[p].size(), state.queues[p].size());
    for (std::size_t i = 0; i < state.queues[p].size(); ++i) {
      EXPECT_EQ(loaded.queues[p][i].id, state.queues[p][i].id);
      EXPECT_EQ(loaded.queues[p][i].dest, state.queues[p][i].dest);
      EXPECT_EQ(loaded.queues[p][i].flags, state.queues[p][i].flags);
      EXPECT_EQ(loaded.queues[p][i].arrived, state.queues[p][i].arrived);
    }
  }
  // The encoded payload is byte-stable: encode(decode(x)) == encode(x).
  EXPECT_EQ(EncodeCheckpoint(loaded), EncodeCheckpoint(state));
}

TEST(CkptFileTest, TruncatedFileIsRejected) {
  const std::string path = TempPath("truncated.mdc");
  ASSERT_EQ(WriteCheckpointFile(path, SampleState(), nullptr), CkptStatus::kOk);
  std::vector<char> bytes = ReadAll(path);
  ASSERT_GT(bytes.size(), 40u);

  // Torn mid-payload: header intact, payload short.
  std::vector<char> torn(bytes.begin(),
                         bytes.begin() + static_cast<std::ptrdiff_t>(
                                             bytes.size() / 2));
  WriteAll(path, torn);
  EngineCheckpointState out;
  EXPECT_EQ(ReadCheckpointFile(path, &out, nullptr, nullptr),
            CkptStatus::kTruncated);

  // Torn mid-header.
  WriteAll(path, std::vector<char>(bytes.begin(), bytes.begin() + 10));
  EXPECT_EQ(ReadCheckpointFile(path, &out, nullptr, nullptr),
            CkptStatus::kTruncated);
}

TEST(CkptFileTest, BitFlipIsRejectedByCrc) {
  const std::string path = TempPath("bitflip.mdc");
  ASSERT_EQ(WriteCheckpointFile(path, SampleState(), nullptr), CkptStatus::kOk);
  std::vector<char> bytes = ReadAll(path);
  bytes[bytes.size() - 3] ^= 0x40;  // one bit, deep in the payload
  WriteAll(path, bytes);
  EngineCheckpointState out;
  EXPECT_EQ(ReadCheckpointFile(path, &out, nullptr, nullptr),
            CkptStatus::kBadChecksum);
}

TEST(CkptFileTest, WrongVersionIsRejected) {
  const std::string path = TempPath("version.mdc");
  ASSERT_EQ(WriteCheckpointFile(path, SampleState(), nullptr), CkptStatus::kOk);
  std::vector<char> bytes = ReadAll(path);
  bytes[8] = 99;  // version field follows the 8-byte magic
  WriteAll(path, bytes);
  EngineCheckpointState out;
  EXPECT_EQ(ReadCheckpointFile(path, &out, nullptr, nullptr),
            CkptStatus::kBadVersion);
}

TEST(CkptFileTest, WrongMagicIsRejected) {
  const std::string path = TempPath("magic.mdc");
  ASSERT_EQ(WriteCheckpointFile(path, SampleState(), nullptr), CkptStatus::kOk);
  std::vector<char> bytes = ReadAll(path);
  bytes[0] = 'X';
  WriteAll(path, bytes);
  EngineCheckpointState out;
  EXPECT_EQ(ReadCheckpointFile(path, &out, nullptr, nullptr),
            CkptStatus::kBadMagic);
}

TEST(CkptFileTest, WrongOptionsHashIsRejectedAsBadManifest) {
  const std::string path = TempPath("manifest.mdc");
  const EngineCheckpointState state = SampleState();
  ASSERT_EQ(WriteCheckpointFile(path, state, nullptr), CkptStatus::kOk);
  EngineCheckpointState out;
  const std::uint64_t wrong = state.options_hash ^ 1;
  EXPECT_EQ(ReadCheckpointFile(path, &out, &wrong, nullptr),
            CkptStatus::kBadManifest);
  // And the right hash passes.
  EXPECT_EQ(ReadCheckpointFile(path, &out, &state.options_hash, nullptr),
            CkptStatus::kOk);
}

TEST(CkptFileTest, ValidChecksumOverGarbagePayloadIsBadPayload) {
  // A CRC-correct file whose payload does not decode (e.g. written by a
  // newer minor revision, or corrupted before checksumming) must come back
  // as kBadPayload — decode errors are distinct from integrity errors.
  // Build the 28-byte header by hand around a garbage payload.
  const std::vector<std::uint8_t> garbage(16, 0xAB);
  std::vector<std::uint8_t> file;
  const char magic[8] = {'M', 'D', 'M', 'C', 'K', 'P', 'T', '1'};
  file.insert(file.end(), magic, magic + 8);
  auto put32 = [&file](std::uint32_t v) {
    for (int i = 0; i < 4; ++i)
      file.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  };
  auto put64 = [&file](std::uint64_t v) {
    for (int i = 0; i < 8; ++i)
      file.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  };
  put32(1);  // format version
  put32(0);  // flags
  put64(garbage.size());
  put32(Crc32(garbage.data(), garbage.size()));
  file.insert(file.end(), garbage.begin(), garbage.end());
  const std::string path = TempPath("garbage.mdc");
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(reinterpret_cast<const char*>(file.data()),
            static_cast<std::streamsize>(file.size()));
  out.close();
  EngineCheckpointState st;
  EXPECT_EQ(ReadCheckpointFile(path, &st, nullptr, nullptr),
            CkptStatus::kBadPayload);
}

TEST(CkptFileTest, IoErrorCarriesErrnoText) {
  EngineCheckpointState out;
  std::string error;
  EXPECT_EQ(ReadCheckpointFile("/nonexistent-dir/nope.mdc", &out, nullptr,
                               &error),
            CkptStatus::kIoError);
  EXPECT_NE(error.find("nope.mdc"), std::string::npos) << error;
  EXPECT_FALSE(error.empty());

  EXPECT_EQ(WriteCheckpointFile("/nonexistent-dir/nope.mdc", SampleState(),
                                &error),
            CkptStatus::kIoError);
  EXPECT_FALSE(error.empty());
}

TEST(CkptFileTest, StatusNamesAreStable) {
  EXPECT_STREQ(CkptStatusName(CkptStatus::kOk), "ok");
  EXPECT_STREQ(CkptStatusName(CkptStatus::kTruncated), "truncated");
  EXPECT_STREQ(CkptStatusName(CkptStatus::kBadChecksum), "bad_checksum");
  EXPECT_STREQ(CkptStatusName(CkptStatus::kBadManifest), "bad_manifest");
}

// ---------------------------------------------------------------------------
// Manager: cadence, rotation, corrupt-generation fallback.

std::string FreshDir(const std::string& name) {
  const std::string dir = testing::TempDir() + name;
  // Clear leftovers from a previous run of the same test.
  for (const CheckpointFileInfo& f : CheckpointManager::ListCheckpoints(dir)) {
    std::remove(f.path.c_str());
  }
  return dir;
}

TEST(CheckpointManagerTest, StepCadence) {
  CheckpointOptions copts;
  copts.dir = FreshDir("cadence");
  copts.every_steps = 10;
  CheckpointManager mgr(copts);
  EXPECT_FALSE(mgr.Due(5));
  EXPECT_TRUE(mgr.Due(10));
  EXPECT_TRUE(mgr.Due(37));  // still due until a save advances the clock

  EngineCheckpointState state = SampleState();
  state.step = 37;
  mgr.Save(state, "cadence");
  EXPECT_EQ(mgr.saves(), 1);
  EXPECT_FALSE(mgr.Due(42));
  EXPECT_TRUE(mgr.Due(47));
}

TEST(CheckpointManagerTest, RotationKeepsNewestK) {
  CheckpointOptions copts;
  copts.dir = FreshDir("rotation");
  copts.keep = 2;
  CheckpointManager mgr(copts);
  EngineCheckpointState state = SampleState();
  for (std::int64_t step : {10, 20, 30, 40}) {
    state.step = step;
    mgr.Save(state, "cadence");
  }
  EXPECT_EQ(mgr.saves(), 4);
  const auto files = CheckpointManager::ListCheckpoints(copts.dir);
  ASSERT_EQ(files.size(), 2u);
  EXPECT_EQ(files[0].step, 30);
  EXPECT_EQ(files[1].step, 40);
}

TEST(CheckpointManagerTest, LoadNewestValidFallsBackPastCorruption) {
  CheckpointOptions copts;
  copts.dir = FreshDir("fallback");
  copts.keep = 5;
  CheckpointManager mgr(copts);
  EngineCheckpointState state = SampleState();
  state.step = 10;
  mgr.Save(state, "cadence");
  state.step = 20;
  mgr.Save(state, "cadence");
  ASSERT_EQ(mgr.save_failures(), 0) << mgr.last_error();

  // Corrupt the newest generation; the older one must win, with the
  // rejection logged.
  const auto files = CheckpointManager::ListCheckpoints(copts.dir);
  ASSERT_EQ(files.size(), 2u);
  std::vector<char> bytes = ReadAll(files[1].path);
  bytes[bytes.size() - 1] ^= 0x55;
  WriteAll(files[1].path, bytes);

  EngineCheckpointState loaded;
  std::string loaded_path;
  std::string log;
  ASSERT_EQ(CheckpointManager::LoadNewestValid(copts.dir, &loaded, nullptr,
                                               &loaded_path, &log),
            CkptStatus::kOk);
  EXPECT_EQ(loaded.step, 10);
  EXPECT_EQ(loaded_path, files[0].path);
  EXPECT_NE(log.find("bad_checksum"), std::string::npos) << log;
}

TEST(CheckpointManagerTest, LoadFromEmptyDirReportsIoError) {
  EngineCheckpointState loaded;
  EXPECT_EQ(CheckpointManager::LoadNewestValid(FreshDir("empty"), &loaded,
                                               nullptr, nullptr, nullptr),
            CkptStatus::kIoError);
}

TEST(CheckpointManagerTest, EndToEndEngineRunWritesResumableFiles) {
  const MeshSpec spec{2, 8, Wrap::kMesh};
  const Topology topo = spec.Build();
  Network initial(topo);
  Rng rng(17);
  FillPermutation(initial, RandomPermutation(topo, rng), topo.dim());

  RunOutput baseline;
  {
    Network net = initial;
    Engine engine(topo, {});
    baseline.result = engine.Route(net);
    baseline.snapshot = OrderedSnapshot(net);
  }

  CheckpointOptions copts;
  copts.dir = FreshDir("end2end");
  copts.every_steps = 4;
  copts.keep = 3;
  CheckpointManager mgr(copts);
  EngineOptions opts;
  opts.checkpoint = &mgr;
  {
    Network net = initial;
    Engine engine(topo, opts);
    engine.Route(net);
  }
  ASSERT_GT(mgr.saves(), 0);
  ASSERT_EQ(mgr.save_failures(), 0) << mgr.last_error();

  EngineCheckpointState loaded;
  std::string loaded_path;
  const std::uint64_t expected = HashEngineOptions({});
  ASSERT_EQ(CheckpointManager::LoadNewestValid(copts.dir, &loaded, &expected,
                                               &loaded_path, nullptr),
            CkptStatus::kOk);
  Network net(topo);
  Engine engine(topo, {});
  RunOutput resumed;
  resumed.result = engine.Resume(net, loaded);
  resumed.snapshot = OrderedSnapshot(net);
  ExpectSameRun(resumed, baseline);
}

}  // namespace
}  // namespace mdmesh
