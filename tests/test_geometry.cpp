#include "meshsim/geometry.h"

#include <gtest/gtest.h>

#include <cmath>

namespace mdmesh {
namespace {

TEST(GeometryTest, HalfDistToCenterMatchesDirectComputation) {
  Topology topo(3, 5, Wrap::kMesh);
  const double center = (5 - 1) / 2.0;
  for (ProcId p = 0; p < topo.size(); ++p) {
    Point c = topo.Coords(p);
    double dist = 0;
    for (int i = 0; i < 3; ++i) {
      dist += std::abs(c[static_cast<std::size_t>(i)] - center);
    }
    EXPECT_EQ(HalfDistToCenter(topo, p), static_cast<std::int64_t>(2 * dist));
  }
}

TEST(GeometryTest, CountWithinHalfDist) {
  Topology topo(2, 3, Wrap::kMesh);  // center at (1,1)
  EXPECT_EQ(CountWithinHalfDist(topo, 0), 1);   // just the center
  EXPECT_EQ(CountWithinHalfDist(topo, 2), 5);   // plus the 4 neighbors
  EXPECT_EQ(CountWithinHalfDist(topo, 4), 9);   // everything
}

TEST(GeometryTest, HalfOfProcessorsWithinQuarterDiameter) {
  // Section 3.1: |C(D/4)| is half the network. The per-coordinate distance
  // to the center has a symmetric distribution, so the claim is exact in
  // the continuum; discrete small-n grids sit somewhat below half and
  // approach it as n grows.
  for (auto [d, n] : {std::pair{2, 8}, std::pair{2, 16}, std::pair{3, 8}}) {
    Topology topo(d, n, Wrap::kMesh);
    const std::int64_t D = topo.Diameter();
    const std::int64_t count = CountWithinHalfDist(topo, D / 2);  // half-units
    const double frac = static_cast<double>(count) / static_cast<double>(topo.size());
    EXPECT_GT(frac, 0.28) << "d=" << d << " n=" << n;
    EXPECT_LT(frac, 0.65) << "d=" << d << " n=" << n;
  }
}

TEST(GeometryTest, FractionApproachesHalfWithN) {
  Topology small(2, 8, Wrap::kMesh);
  Topology large(2, 64, Wrap::kMesh);
  const double f_small =
      static_cast<double>(CountWithinHalfDist(small, small.Diameter() / 2)) /
      static_cast<double>(small.size());
  const double f_large =
      static_cast<double>(CountWithinHalfDist(large, large.Diameter() / 2)) /
      static_cast<double>(large.size());
  EXPECT_GT(f_large, f_small);
  EXPECT_GT(f_large, 0.45);
  EXPECT_LT(f_large, 0.55);
}

TEST(GeometryTest, CenterRegionPicksClosestBlocks) {
  Topology topo(2, 8, Wrap::kMesh);
  BlockGrid grid(topo, 4);  // 16 blocks of side 2
  CenterRegion region(grid, 4);
  EXPECT_EQ(region.count(), 4);
  // The four chosen blocks must be the four around the center (coords 1..2).
  for (BlockId b : region.blocks()) {
    Point bc = grid.BlockCoords(b);
    EXPECT_GE(bc[0], 1);
    EXPECT_LE(bc[0], 2);
    EXPECT_GE(bc[1], 1);
    EXPECT_LE(bc[1], 2);
  }
}

TEST(GeometryTest, NumberingIsConsistent) {
  Topology topo(3, 8, Wrap::kMesh);
  BlockGrid grid(topo, 2);
  CenterRegion region(grid, 4);
  for (std::int64_t c = 0; c < region.count(); ++c) {
    EXPECT_EQ(region.NumberOf(region.BlockAt(c)), c);
    EXPECT_TRUE(region.Contains(region.BlockAt(c)));
  }
  std::int64_t outside = 0;
  for (BlockId b = 0; b < grid.num_blocks(); ++b) {
    if (!region.Contains(b)) {
      EXPECT_EQ(region.NumberOf(b), -1);
      ++outside;
    }
  }
  EXPECT_EQ(outside, grid.num_blocks() - 4);
}

TEST(GeometryTest, MirrorClosedRegionIsClosedUnderMirror) {
  Topology topo(3, 8, Wrap::kMesh);
  BlockGrid grid(topo, 2);
  CenterRegion region(grid, 4, /*mirror_closed=*/true);
  for (BlockId b : region.blocks()) {
    EXPECT_TRUE(region.Contains(grid.MirrorBlock(b)))
        << "mirror of block " << b << " missing from the region";
  }
}

TEST(GeometryTest, MirrorClosedAtHalfTheBlocks) {
  Topology topo(2, 16, Wrap::kMesh);
  BlockGrid grid(topo, 4);
  CenterRegion region(grid, grid.num_blocks() / 2, /*mirror_closed=*/true);
  for (BlockId b : region.blocks()) {
    EXPECT_TRUE(region.Contains(grid.MirrorBlock(b)));
  }
}

TEST(GeometryTest, HalfRegionRadiusNearQuarterDiameter) {
  // The m/2 center blocks form the paper's region C of radius ~D/4.
  Topology topo(2, 32, Wrap::kMesh);
  BlockGrid grid(topo, 4);
  CenterRegion region(grid, grid.num_blocks() / 2);
  const double D = static_cast<double>(topo.Diameter());
  EXPECT_LT(region.radius(), 0.40 * D);
  EXPECT_GT(region.radius(), 0.10 * D);
}

TEST(GeometryTest, MaxDistToAnywhereAboutThreeQuartersD) {
  // Section 3.1: no processor in C is farther than ~3D/4 (+block slack)
  // from any processor of the network.
  Topology topo(2, 16, Wrap::kMesh);
  BlockGrid grid(topo, 4);
  CenterRegion region(grid, grid.num_blocks() / 2);
  const double D = static_cast<double>(topo.Diameter());
  const auto worst = static_cast<double>(region.MaxDistToAnywhere());
  EXPECT_LE(worst, 0.75 * D + 2.0 * grid.block_side());
  EXPECT_GE(worst, 0.5 * D);
}

TEST(GeometryTest, FullRegionIsEverything) {
  Topology topo(2, 8, Wrap::kMesh);
  BlockGrid grid(topo, 2);
  CenterRegion region(grid, grid.num_blocks());
  EXPECT_EQ(region.count(), grid.num_blocks());
  for (BlockId b = 0; b < grid.num_blocks(); ++b) EXPECT_TRUE(region.Contains(b));
}

}  // namespace
}  // namespace mdmesh
