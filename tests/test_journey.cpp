// Packet-journey tracing (obs/journey.h) against the engine's three step
// paths. The contracts pinned here are the subsystem's reason to exist:
//
//   * the critical-path identity, exactly: for every complete delivered
//     journey, delivery_step - injection_step = moves + waits;
//   * byte-identical JourneyLogs for any thread count, both layouts
//     (legacy queues vs tiled arena), both traversal modes (sparse vs
//     dense), fused vs unfused step loops, and under fault plans;
//   * deterministic sampling: a pure function of (id, seed, watch);
//   * tracing disabled or enabled never perturbs the run itself.
#include <gtest/gtest.h>

#include <sstream>
#include <tuple>
#include <vector>

#include "fault/fault_plan.h"
#include "net/engine.h"
#include "obs/chrome_trace.h"
#include "obs/critical_path.h"
#include "obs/journey.h"
#include "routing/permutations.h"
#include "serve/json_value.h"
#include "util/rng.h"
#include "util/thread_pool.h"
#include "workload/driver.h"
#include "workload/patterns.h"

namespace mdmesh {
namespace {

Packet MakePacket(std::int64_t id, ProcId dest, std::uint16_t klass = 0) {
  Packet pkt;
  pkt.id = id;
  pkt.key = static_cast<std::uint64_t>(id);
  pkt.dest = dest;
  pkt.klass = klass;
  return pkt;
}

void FillPermutation(Network& net, const std::vector<ProcId>& dest,
                     int classes) {
  std::int64_t id = 0;
  for (ProcId p = 0; p < net.topo().size(); ++p) {
    net.Add(p, MakePacket(id, dest[static_cast<std::size_t>(p)],
                          static_cast<std::uint16_t>(
                              id % (classes > 0 ? classes : 1))));
    ++id;
  }
}

JourneyTracer::Options TraceAll() {
  JourneyTracer::Options jopts;
  jopts.sample_rate = 1.0;
  return jopts;
}

EngineOptions Opts(LayoutMode layout, SparseMode mode = SparseMode::kAuto) {
  EngineOptions opts;
  opts.layout = layout;
  opts.sparse = mode;
  opts.invariants = InvariantMode::kOff;
  return opts;
}

struct TracedRun {
  RouteResult result;
  std::shared_ptr<const JourneyLog> log;
};

TracedRun RunTraced(const Topology& topo, const Network& initial,
                    EngineOptions opts, JourneyTracer* tracer) {
  Network net = initial;
  opts.journeys = tracer;
  Engine engine(topo, opts);
  TracedRun out;
  out.result = engine.Route(net);
  out.log = out.result.journeys;
  return out;
}

using EventTuple = std::tuple<std::int64_t, std::int64_t, std::int64_t,
                              std::int32_t, int, int, int, int>;

std::vector<EventTuple> Flatten(const JourneyLog& log) {
  std::vector<EventTuple> out;
  out.reserve(log.events.size());
  for (const JourneyEvent& ev : log.events) {
    out.emplace_back(ev.id, ev.proc, ev.step, ev.aux, int{ev.kind},
                     int{ev.dim}, int{ev.dir}, int{ev.flags});
  }
  return out;
}

void ExpectSameLog(const JourneyLog& a, const JourneyLog& b) {
  EXPECT_EQ(a.final_step, b.final_step);
  EXPECT_EQ(a.traced_packets, b.traced_packets);
  EXPECT_EQ(a.truncated, b.truncated);
  EXPECT_EQ(Flatten(a), Flatten(b));
}

TEST(JourneySampler, PureFunctionOfIdSeedAndWatch) {
  JourneyTracer::Options opts;
  opts.sample_rate = 0.5;
  opts.seed = 42;
  JourneyTracer a(opts);
  JourneyTracer b(opts);
  int sampled = 0;
  for (std::int64_t id = 0; id < 1000; ++id) {
    EXPECT_EQ(a.Sampled(id), b.Sampled(id));
    if (a.Sampled(id)) ++sampled;
  }
  // A 50% rate over a full-avalanche hash lands near the middle; the exact
  // count is pinned by determinism, the range by the hash being unbiased.
  EXPECT_GT(sampled, 400);
  EXPECT_LT(sampled, 600);

  opts.seed = 43;
  JourneyTracer c(opts);
  bool differs = false;
  for (std::int64_t id = 0; id < 1000 && !differs; ++id) {
    differs = a.Sampled(id) != c.Sampled(id);
  }
  EXPECT_TRUE(differs) << "reseeding must reshuffle the sample";
}

TEST(JourneySampler, RateOneTracesEverythingRateZeroOnlyTheWatchList) {
  JourneyTracer::Options all;
  all.sample_rate = 1.0;
  JourneyTracer every(all);
  for (std::int64_t id : {0, 1, 17, 999999}) EXPECT_TRUE(every.Sampled(id));

  JourneyTracer::Options none;
  none.sample_rate = 0.0;
  none.watch = {7, 3};  // unsorted on purpose; the tracer sorts
  JourneyTracer watched(none);
  for (std::int64_t id = 0; id < 100; ++id) {
    EXPECT_EQ(watched.Sampled(id), id == 3 || id == 7);
  }
}

TEST(JourneyTrace, IdentityHoldsForEveryPacketOfAPermutationRun) {
  Topology topo(2, 8, Wrap::kMesh);
  Rng rng(5);
  Network net(topo);
  FillPermutation(net, RandomPermutation(topo, rng), 2);
  JourneyTracer tracer(TraceAll());
  const TracedRun run = RunTraced(topo, net, Opts(LayoutMode::kLegacy),
                                  &tracer);
  ASSERT_TRUE(run.result.completed);
  ASSERT_NE(run.log, nullptr);
  EXPECT_EQ(run.log->traced_packets, run.result.packets);
  EXPECT_FALSE(run.log->truncated);

  std::int64_t last_delivery = 0;
  for (const PacketJourney& j : DecomposeJourneys(*run.log, topo.dim())) {
    EXPECT_TRUE(j.complete());
    EXPECT_TRUE(j.delivered());
    EXPECT_TRUE(j.IdentityHolds())
        << "packet " << j.id << ": latency " << j.latency() << " != "
        << j.moves << " moves + " << j.waits() << " waits";
    EXPECT_EQ(j.injected_step, 0);  // preloaded
    std::int64_t dim_sum = 0;
    for (std::int64_t m : j.dim_moves) dim_sum += m;
    EXPECT_EQ(dim_sum, j.moves);
    EXPECT_GE(j.moves, j.dist0);
    last_delivery = std::max(last_delivery, j.delivery_step);
  }
  // Full-rate tracing sees the packet that defined the run's step count.
  EXPECT_EQ(last_delivery, run.result.steps);
}

TEST(JourneyTrace, ZeroHopPacketIsASingleDeliveredInjection) {
  Topology topo(2, 4, Wrap::kMesh);
  Network net(topo);
  net.Add(5, MakePacket(0, 5));   // already home
  net.Add(0, MakePacket(1, 15));  // travels corner to corner
  JourneyTracer tracer(TraceAll());
  const TracedRun run = RunTraced(topo, net, Opts(LayoutMode::kLegacy),
                                  &tracer);
  ASSERT_NE(run.log, nullptr);
  const auto journeys = DecomposeJourneys(*run.log, topo.dim());
  ASSERT_EQ(journeys.size(), 2u);
  const PacketJourney& home = journeys[0];
  EXPECT_EQ(home.id, 0);
  EXPECT_EQ(home.event_count, 1u);
  EXPECT_EQ(home.moves, 0);
  EXPECT_EQ(home.waits(), 0);
  EXPECT_EQ(home.delivery_step, home.injected_step);
  EXPECT_TRUE(home.IdentityHolds());
  const PacketJourney& far = journeys[1];
  EXPECT_EQ(far.dist0, 6);
  EXPECT_GE(far.moves, 6);
  EXPECT_TRUE(far.IdentityHolds());
}

TEST(JourneyTrace, ByteIdenticalAcrossThreadCountsLayoutsAndModes) {
  Topology topo(2, 10, Wrap::kTorus);
  Rng rng(9);
  Network net(topo);
  FillPermutation(net, RandomPermutation(topo, rng), 2);
  JourneyTracer baseline_tracer(TraceAll());
  const TracedRun baseline = RunTraced(
      topo, net, Opts(LayoutMode::kLegacy, SparseMode::kNever),
      &baseline_tracer);
  ASSERT_NE(baseline.log, nullptr);
  ASSERT_GT(baseline.log->events.size(), 0u);

  ThreadPool pool(4);
  struct Variant {
    const char* name;
    LayoutMode layout;
    SparseMode sparse;
    bool pooled;
    InvariantMode invariants;
  };
  const Variant variants[] = {
      {"legacy sparse", LayoutMode::kLegacy, SparseMode::kAlways, false,
       InvariantMode::kOff},
      {"legacy pooled", LayoutMode::kLegacy, SparseMode::kNever, true,
       InvariantMode::kOff},
      {"legacy unfused (checker on)", LayoutMode::kLegacy, SparseMode::kNever,
       false, InvariantMode::kOn},
      {"tiled serial", LayoutMode::kTiled, SparseMode::kNever, false,
       InvariantMode::kOff},
      {"tiled pooled", LayoutMode::kTiled, SparseMode::kNever, true,
       InvariantMode::kOff},
      {"tiled sparse pooled", LayoutMode::kTiled, SparseMode::kAlways, true,
       InvariantMode::kOff},
  };
  for (const Variant& v : variants) {
    SCOPED_TRACE(v.name);
    EngineOptions opts = Opts(v.layout, v.sparse);
    opts.invariants = v.invariants;
    opts.pool = v.pooled ? &pool : nullptr;
    JourneyTracer tracer(TraceAll());
    const TracedRun run = RunTraced(topo, net, opts, &tracer);
    ASSERT_NE(run.log, nullptr);
    ExpectSameLog(*baseline.log, *run.log);
  }
}

TEST(JourneyTrace, ByteIdenticalUnderFaults) {
  Topology topo(2, 10, Wrap::kTorus);
  FaultSpec spec;
  spec.link_rate = 0.02;
  spec.flap_rate = 0.02;
  const FaultPlan plan = FaultPlan::Random(topo, spec, /*seed=*/11);
  Rng rng(11);
  Network net(topo);
  FillPermutation(net, RandomPermutation(topo, rng), 2);
  ThreadPool pool(4);

  EngineOptions legacy_opts = Opts(LayoutMode::kLegacy);
  legacy_opts.faults = &plan;
  JourneyTracer legacy_tracer(TraceAll());
  const TracedRun legacy = RunTraced(topo, net, legacy_opts, &legacy_tracer);
  ASSERT_TRUE(legacy.result.completed);
  ASSERT_GT(legacy.result.detours, 0);
  ASSERT_NE(legacy.log, nullptr);

  // Faulted journeys still satisfy the identity: a dead-link hold is a
  // wait, a detour hop is a move.
  bool saw_detour_move = false;
  for (const PacketJourney& j : DecomposeJourneys(*legacy.log, topo.dim())) {
    EXPECT_TRUE(j.IdentityHolds()) << "packet " << j.id;
    saw_detour_move = saw_detour_move || j.detour_moves > 0;
  }
  EXPECT_TRUE(saw_detour_move);

  EngineOptions tiled_opts = Opts(LayoutMode::kTiled);
  tiled_opts.faults = &plan;
  tiled_opts.pool = &pool;
  JourneyTracer tiled_tracer(TraceAll());
  const TracedRun tiled = RunTraced(topo, net, tiled_opts, &tiled_tracer);
  ASSERT_NE(tiled.log, nullptr);
  ExpectSameLog(*legacy.log, *tiled.log);
}

TEST(JourneyTrace, SampledLogIsASubsetAndStillDeterministic) {
  Topology topo(2, 12, Wrap::kMesh);
  Rng rng(3);
  Network net(topo);
  FillPermutation(net, RandomPermutation(topo, rng), 2);
  JourneyTracer::Options jopts;
  jopts.sample_rate = 0.25;
  jopts.seed = 99;
  JourneyTracer a(jopts);
  JourneyTracer b(jopts);
  const TracedRun ra = RunTraced(topo, net, Opts(LayoutMode::kLegacy), &a);
  const TracedRun rb = RunTraced(topo, net, Opts(LayoutMode::kTiled), &b);
  ASSERT_NE(ra.log, nullptr);
  EXPECT_GT(ra.log->traced_packets, 0);
  EXPECT_LT(ra.log->traced_packets, ra.result.packets);
  ExpectSameLog(*ra.log, *rb.log);
}

TEST(JourneyTrace, TracingDoesNotPerturbTheRun) {
  Topology topo(2, 9, Wrap::kMesh);
  Rng rng(21);
  Network net(topo);
  FillPermutation(net, RandomPermutation(topo, rng), 2);

  Network bare_net = net;
  Engine bare_engine(topo, Opts(LayoutMode::kLegacy));
  const RouteResult bare = bare_engine.Route(bare_net);
  EXPECT_EQ(bare.journeys, nullptr);
  EXPECT_EQ(bare.critical_path, nullptr);

  JourneyTracer tracer(TraceAll());
  const TracedRun traced = RunTraced(topo, net, Opts(LayoutMode::kLegacy),
                                     &tracer);
  EXPECT_EQ(bare.steps, traced.result.steps);
  EXPECT_EQ(bare.moves, traced.result.moves);
  EXPECT_EQ(bare.max_queue, traced.result.max_queue);
  EXPECT_EQ(bare.detours, traced.result.detours);
}

TEST(JourneyTrace, TruncationCapsTheLogAndFlagsIt) {
  Topology topo(2, 8, Wrap::kMesh);
  Rng rng(5);
  Network net(topo);
  FillPermutation(net, RandomPermutation(topo, rng), 2);
  JourneyTracer::Options jopts = TraceAll();
  jopts.max_events = 16;
  JourneyTracer tracer(jopts);
  const TracedRun run = RunTraced(topo, net, Opts(LayoutMode::kLegacy),
                                  &tracer);
  ASSERT_NE(run.log, nullptr);
  EXPECT_TRUE(run.log->truncated);
  EXPECT_LE(static_cast<std::int64_t>(run.log->events.size()), 16);
}

TEST(JourneyTrace, InjectorRunJourneysHoldTheIdentityAndMatchAcrossThreads) {
  Topology topo(2, 8, Wrap::kTorus);
  TrafficPattern pattern(topo, PatternKind::kUniform, /*seed=*/17);
  DriverOptions dopts;
  dopts.rate = 0.05;
  dopts.warmup_steps = 10;
  dopts.measure_steps = 60;
  dopts.drain = true;
  dopts.seed = 17;

  JourneyTracer serial_tracer(TraceAll());
  EngineOptions serial_opts = Opts(LayoutMode::kLegacy);
  serial_opts.journeys = &serial_tracer;
  const WorkloadResult serial = RunOpenLoop(topo, pattern, dopts, serial_opts);
  ASSERT_NE(serial.route.journeys, nullptr);
  ASSERT_GT(serial.route.journeys->traced_packets, 0);

  for (const PacketJourney& j :
       DecomposeJourneys(*serial.route.journeys, topo.dim())) {
    EXPECT_TRUE(j.complete());
    EXPECT_TRUE(j.delivered());  // drained run: everything lands
    EXPECT_TRUE(j.IdentityHolds()) << "packet " << j.id;
    // t0 is injection_step - 1, so the traced latency equals the latency
    // histogram's arrived - tag + 1 accounting.
    EXPECT_GE(j.injected_step, 0);
  }

  for (unsigned workers : {2u, 4u}) {
    ThreadPool pool(workers);
    JourneyTracer tracer(TraceAll());
    EngineOptions opts = Opts(LayoutMode::kTiled);
    opts.pool = &pool;
    opts.journeys = &tracer;
    const WorkloadResult pooled = RunOpenLoop(topo, pattern, dopts, opts);
    ASSERT_NE(pooled.route.journeys, nullptr);
    EXPECT_EQ(serial.delivery_hash, pooled.delivery_hash);
    ExpectSameLog(*serial.route.journeys, *pooled.route.journeys);
  }
}

TEST(CriticalPath, ReportDecomposesTheRunAndAnchorsTheBoundGap) {
  Topology topo(2, 8, Wrap::kMesh);
  Network net(topo);
  FillPermutation(net, TransposePermutation(topo), 2);
  JourneyTracer tracer(TraceAll());
  const TracedRun run = RunTraced(topo, net, Opts(LayoutMode::kLegacy),
                                  &tracer);
  ASSERT_TRUE(run.result.completed);
  ASSERT_NE(run.result.critical_path, nullptr);
  const CriticalPathReport& rep = *run.result.critical_path;

  EXPECT_EQ(rep.run_steps, run.result.steps);
  EXPECT_EQ(rep.traced, run.result.packets);
  EXPECT_EQ(rep.traced_delivered, run.result.packets);
  EXPECT_EQ(rep.identity_violations, 0);
  ASSERT_TRUE(rep.have_last);
  EXPECT_TRUE(rep.critical_traced);  // full-rate sample contains the last
  EXPECT_EQ(rep.last.delivery_step, run.result.steps);
  EXPECT_TRUE(rep.last.IdentityHolds());
  ASSERT_TRUE(rep.have_p99);
  // Preloaded packets all inject at t0 = 0, so the latest delivery is also
  // the largest latency and p99 cannot exceed it.
  EXPECT_LE(rep.p99.latency(), rep.last.latency());

  // Bound gap: the run can never beat the instance's lower bounds, and for
  // a permutation the realized max distance is one of them.
  EXPECT_EQ(rep.distance_lb, run.result.max_distance);
  EXPECT_GE(rep.lower_bound, rep.distance_lb);
  EXPECT_GE(rep.lower_bound, rep.bisection_lb);
  EXPECT_EQ(rep.bound_gap, rep.run_steps - rep.lower_bound);
  EXPECT_GE(rep.bound_gap, 0);

  std::int64_t dim_sum = 0;
  for (std::int64_t m : rep.dim_moves) dim_sum += m;
  EXPECT_EQ(dim_sum, rep.total_moves);
  EXPECT_EQ(rep.total_moves, run.result.moves);
}

TEST(JourneyExport, JsonlLinesParseAndCarryTheDecomposition) {
  Topology topo(2, 6, Wrap::kMesh);
  Network net(topo);
  FillPermutation(net, ReversalPermutation(topo), 2);
  JourneyTracer tracer(TraceAll());
  const TracedRun run = RunTraced(topo, net, Opts(LayoutMode::kLegacy),
                                  &tracer);
  ASSERT_NE(run.log, nullptr);
  std::ostringstream os;
  WriteJourneysJsonl(*run.log, topo.dim(), os);
  std::istringstream is(os.str());
  std::string line;
  std::int64_t lines = 0;
  while (std::getline(is, line)) {
    const JsonParseResult parsed = ParseJson(line);
    ASSERT_TRUE(parsed.ok) << parsed.error << " in: " << line;
    const JsonValue& j = parsed.value;
    EXPECT_TRUE(j["delivered"].AsBool());
    const std::int64_t latency =
        j["delivery_step"].AsInt() - j["injected_step"].AsInt();
    const std::int64_t waits =
        j["waits"]["lost_bid"].AsInt() + j["waits"]["links_dead"].AsInt();
    EXPECT_EQ(latency, j["moves"].AsInt() + waits);
    EXPECT_GT(j["events"].Items().size(), 0u);
    ++lines;
  }
  EXPECT_EQ(lines, run.log->traced_packets);
}

TEST(JourneyExport, ChromeTraceGainsOneAsyncSpanPerTracedPacket) {
  Topology topo(2, 6, Wrap::kMesh);
  Network net(topo);
  FillPermutation(net, TransposePermutation(topo), 2);
  JourneyTracer tracer(TraceAll());
  const TracedRun run = RunTraced(topo, net, Opts(LayoutMode::kLegacy),
                                  &tracer);
  ASSERT_NE(run.log, nullptr);
  RunManifest manifest;
  ChromeTraceWriter writer(manifest);
  const std::size_t before = writer.event_count();
  ExportJourneysToChromeTrace(*run.log, topo.dim(), &writer);
  // One b/e async pair per traced packet.
  EXPECT_EQ(writer.event_count(),
            before + 2 * static_cast<std::size_t>(run.log->traced_packets));
  std::ostringstream os;
  writer.Write(os);
  EXPECT_NE(os.str().find("\"packet journeys\""), std::string::npos);
}

}  // namespace
}  // namespace mdmesh
