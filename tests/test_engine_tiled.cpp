// Tiled SoA packet storage vs the legacy per-processor queues. The two
// layouts (net/tile_arena.h + net/engine_tiled.h vs the Network's
// PacketQueues) must produce byte-identical runs: same step counts, same
// move counts, same final queue contents *in the same order*, same
// delivery traces under open-loop injection — for any thread count, sparse
// mode, wrap, and fault plan. This file extends the test_engine_sparse
// equality harness with a layout axis and pins that contract, plus the
// tiled-only surface: checkpoint round-trips, arena occupancy metrics, and
// the legacy fallback under an active invariant checker.
#include <gtest/gtest.h>

#include <tuple>
#include <vector>

#include "fault/fault_plan.h"
#include "net/engine.h"
#include "net/tile_arena.h"
#include "obs/registry.h"
#include "routing/permutations.h"
#include "routing/two_phase.h"
#include "util/rng.h"
#include "util/thread_pool.h"
#include "workload/driver.h"
#include "workload/patterns.h"

namespace mdmesh {
namespace {

Packet MakePacket(std::int64_t id, ProcId dest, std::uint16_t klass = 0) {
  Packet pkt;
  pkt.id = id;
  pkt.key = static_cast<std::uint64_t>(id);
  pkt.dest = dest;
  pkt.klass = klass;
  return pkt;
}

void FillPermutation(Network& net, const std::vector<ProcId>& dest,
                     int classes) {
  std::int64_t id = 0;
  for (ProcId p = 0; p < net.topo().size(); ++p) {
    net.Add(p, MakePacket(id, dest[static_cast<std::size_t>(p)],
                          static_cast<std::uint16_t>(
                              id % (classes > 0 ? classes : 1))));
    ++id;
  }
}

/// Byte-level view of a network: per processor, the (key, id, dest,
/// arrived, flags) tuples *in queue order* — the tiled Export must leave
/// behind exactly the layout a legacy run would.
using Ordered = std::vector<std::vector<
    std::tuple<std::uint64_t, std::int64_t, ProcId, std::int32_t,
               std::uint16_t>>>;

Ordered OrderedSnapshot(const Network& net) {
  Ordered snap(static_cast<std::size_t>(net.topo().size()));
  for (ProcId p = 0; p < net.topo().size(); ++p) {
    for (const Packet& pkt : net.At(p)) {
      snap[static_cast<std::size_t>(p)].emplace_back(
          pkt.key, pkt.id, pkt.dest, pkt.arrived, pkt.flags);
    }
  }
  return snap;
}

struct RunOutput {
  RouteResult result;
  Ordered snapshot;
};

RunOutput RunOnce(const Topology& topo, const Network& initial,
                  EngineOptions opts) {
  Network net = initial;
  Engine engine(topo, opts);
  RunOutput out;
  out.result = engine.Route(net);
  out.snapshot = OrderedSnapshot(net);
  return out;
}

void ExpectSameRun(const RunOutput& a, const RunOutput& b) {
  EXPECT_EQ(a.result.steps, b.result.steps);
  EXPECT_EQ(a.result.moves, b.result.moves);
  EXPECT_EQ(a.result.max_queue, b.result.max_queue);
  EXPECT_EQ(a.result.packets, b.result.packets);
  EXPECT_EQ(a.result.completed, b.result.completed);
  EXPECT_EQ(a.result.max_overshoot, b.result.max_overshoot);
  EXPECT_EQ(a.result.detours, b.result.detours);
  EXPECT_EQ(a.result.sparse_steps, b.result.sparse_steps);
  EXPECT_EQ(a.result.peak_active_procs, b.result.peak_active_procs);
  EXPECT_EQ(a.result.overshoot.count(), b.result.overshoot.count());
  EXPECT_EQ(a.result.overshoot.mean(), b.result.overshoot.mean());
  EXPECT_EQ(a.snapshot, b.snapshot);
}

/// Invariants off so the tiled layout actually engages (it requires the
/// checker to be off; kAuto would fall back to legacy in debug builds).
EngineOptions Opts(LayoutMode layout, SparseMode mode = SparseMode::kAuto) {
  EngineOptions opts;
  opts.layout = layout;
  opts.sparse = mode;
  opts.invariants = InvariantMode::kOff;
  return opts;
}

class TiledVsLegacyTest
    : public ::testing::TestWithParam<std::tuple<int, int, Wrap>> {};

TEST_P(TiledVsLegacyTest, PermutationsAgreeAcrossSparseModes) {
  auto [d, n, wrap] = GetParam();
  Topology topo(d, n, wrap);
  Rng rng(static_cast<std::uint64_t>(31 * d + n));
  std::vector<std::vector<ProcId>> perms = {
      ReversalPermutation(topo), TransposePermutation(topo),
      RandomPermutation(topo, rng)};
  for (const auto& dest : perms) {
    Network net(topo);
    FillPermutation(net, dest, d);
    for (SparseMode mode :
         {SparseMode::kNever, SparseMode::kAlways, SparseMode::kAuto}) {
      const RunOutput legacy =
          RunOnce(topo, net, Opts(LayoutMode::kLegacy, mode));
      const RunOutput tiled =
          RunOnce(topo, net, Opts(LayoutMode::kTiled, mode));
      EXPECT_TRUE(legacy.result.completed);
      ExpectSameRun(legacy, tiled);
    }
  }
}

// 2D and 3D, mesh and torus, plus non-power-of-two sides (partial last
// tile) and a 4D mesh — the full shape matrix of the acceptance criteria.
INSTANTIATE_TEST_SUITE_P(Shapes, TiledVsLegacyTest,
                         ::testing::Values(std::tuple{2, 8, Wrap::kMesh},
                                           std::tuple{2, 8, Wrap::kTorus},
                                           std::tuple{2, 9, Wrap::kMesh},
                                           std::tuple{3, 4, Wrap::kMesh},
                                           std::tuple{3, 4, Wrap::kTorus},
                                           std::tuple{3, 5, Wrap::kTorus},
                                           std::tuple{4, 3, Wrap::kMesh}));

TEST(TiledVsLegacyTest, IdenticalAtEveryThreadCount) {
  Topology topo(2, 12, Wrap::kTorus);
  Rng rng(7);
  Network net(topo);
  FillPermutation(net, RandomPermutation(topo, rng), 2);
  const RunOutput serial = RunOnce(topo, net, Opts(LayoutMode::kLegacy));
  for (unsigned workers : {0u, 2u, 4u, 8u}) {
    ThreadPool pool(workers);
    EngineOptions opts = Opts(LayoutMode::kTiled);
    opts.pool = &pool;
    ExpectSameRun(serial, RunOnce(topo, net, opts));
  }
}

TEST(TiledVsLegacyTest, IdenticalUnderFaults) {
  Topology topo(2, 10, Wrap::kTorus);
  FaultSpec spec;
  spec.link_rate = 0.02;
  spec.flap_rate = 0.02;
  const FaultPlan plan = FaultPlan::Random(topo, spec, /*seed=*/11);
  Rng rng(11);
  Network net(topo);
  FillPermutation(net, RandomPermutation(topo, rng), 2);
  ThreadPool pool(4);
  for (SparseMode mode :
       {SparseMode::kNever, SparseMode::kAlways, SparseMode::kAuto}) {
    EngineOptions legacy_opts = Opts(LayoutMode::kLegacy, mode);
    legacy_opts.faults = &plan;
    const RunOutput legacy = RunOnce(topo, net, legacy_opts);
    EXPECT_TRUE(legacy.result.completed);
    EXPECT_GT(legacy.result.detours, 0);  // the plan actually forced rerouting
    for (ThreadPool* p : {static_cast<ThreadPool*>(nullptr), &pool}) {
      EngineOptions opts = Opts(LayoutMode::kTiled, mode);
      opts.faults = &plan;
      opts.pool = p;
      ExpectSameRun(legacy, RunOnce(topo, net, opts));
    }
  }
}

TEST(TiledVsLegacyTest, MeshBoundaryFaultsAgree) {
  // Mesh (non-wrapping) faulted runs exercise the tiled alive-lambda's
  // boundary arithmetic (no neighbor table to consult).
  Topology topo(3, 5, Wrap::kMesh);
  FaultSpec spec;
  spec.link_rate = 0.03;
  const FaultPlan plan = FaultPlan::Random(topo, spec, /*seed=*/3);
  Rng rng(13);
  Network net(topo);
  FillPermutation(net, RandomPermutation(topo, rng), 3);
  EngineOptions a = Opts(LayoutMode::kLegacy);
  a.faults = &plan;
  EngineOptions b = Opts(LayoutMode::kTiled);
  b.faults = &plan;
  ExpectSameRun(RunOnce(topo, net, a), RunOnce(topo, net, b));
}

TEST(TiledVsLegacyTest, DeepQueuesSpillToOverflowAndStillAgree) {
  // Six packets per processor: queue depth exceeds kTileLanes, so the
  // tiled layout routes through the per-tile overflow vector.
  Topology topo(2, 8, Wrap::kMesh);
  Rng rng(19);
  Network net(topo);
  std::int64_t id = 0;
  for (int copy = 0; copy < kTileLanes + 2; ++copy) {
    const std::vector<ProcId> dest = RandomPermutation(topo, rng);
    for (ProcId p = 0; p < topo.size(); ++p) {
      net.Add(p, MakePacket(id++, dest[static_cast<std::size_t>(p)],
                            static_cast<std::uint16_t>(copy % 2)));
    }
  }
  const RunOutput legacy = RunOnce(topo, net, Opts(LayoutMode::kLegacy));
  const RunOutput tiled = RunOnce(topo, net, Opts(LayoutMode::kTiled));
  EXPECT_GE(legacy.result.max_queue, kTileLanes + 2);
  ExpectSameRun(legacy, tiled);
}

TEST(TiledVsLegacyTest, TwoPhaseRoutingAgrees) {
  // End-to-end through the Section 5 two-phase router, including the
  // overlapped variant whose two-leg packets retarget mid-flight inside
  // the tiled commit pass.
  Topology topo(2, 16, Wrap::kMesh);
  const std::vector<ProcId> dest = ReversalPermutation(topo);
  for (bool overlap : {false, true}) {
    TwoPhaseOptions legacy;
    legacy.g = 4;
    legacy.overlap = overlap;
    legacy.engine.invariants = InvariantMode::kOff;
    legacy.engine.layout = LayoutMode::kLegacy;
    TwoPhaseOptions tiled = legacy;
    tiled.engine.layout = LayoutMode::kTiled;
    const TwoPhaseResult a = RouteTwoPhase(topo, dest, legacy);
    const TwoPhaseResult b = RouteTwoPhase(topo, dest, tiled);
    EXPECT_TRUE(a.delivered);
    EXPECT_TRUE(b.delivered);
    EXPECT_EQ(a.total_steps, b.total_steps);
    EXPECT_EQ(a.max_queue, b.max_queue);
    EXPECT_EQ(a.phase1.steps, b.phase1.steps);
    EXPECT_EQ(a.phase2.steps, b.phase2.steps);
    EXPECT_EQ(a.phase1.moves, b.phase1.moves);
    EXPECT_EQ(a.phase2.moves, b.phase2.moves);
  }
}

TEST(TiledVsLegacyTest, EngineRecoversAfterAbortedRun) {
  // Abort mid-flight via a tiny step cap: the arena must be rebuilt
  // cleanly by the next Route on the same engine (Import after Export),
  // with no stale mailbox or pending state surviving.
  Topology topo(2, 12, Wrap::kMesh);
  Network net(topo);
  FillPermutation(net, ReversalPermutation(topo), 2);
  Network run = net;
  EngineOptions opts = Opts(LayoutMode::kTiled);
  opts.step_cap = 3;
  Engine engine(topo, opts);
  RouteResult first = engine.Route(run);
  EXPECT_FALSE(first.completed);
  EXPECT_EQ(run.TotalPackets(), topo.size());
  RouteResult again;
  do {
    again = engine.Route(run);
  } while (!again.completed);
  EXPECT_EQ(run.TotalPackets(), topo.size());
  std::int64_t misplaced = 0;
  run.ForEach([&](ProcId p, const Packet& pkt) {
    if (pkt.dest != p) ++misplaced;
  });
  EXPECT_EQ(misplaced, 0);
}

TEST(TiledVsLegacyTest, ReusedEngineMatchesFreshEngine) {
  Topology topo(2, 10, Wrap::kTorus);
  Rng rng(41);
  const std::vector<ProcId> first = RandomPermutation(topo, rng);
  const std::vector<ProcId> second = ReversalPermutation(topo);
  EngineOptions opts = Opts(LayoutMode::kTiled);
  Engine reused(topo, opts);
  Network warmup(topo);
  FillPermutation(warmup, first, 2);
  reused.Route(warmup);
  Network via_reused(topo);
  FillPermutation(via_reused, second, 2);
  const RouteResult r1 = reused.Route(via_reused);
  Network via_fresh(topo);
  FillPermutation(via_fresh, second, 2);
  Engine fresh(topo, opts);
  const RouteResult r2 = fresh.Route(via_fresh);
  EXPECT_EQ(r1.steps, r2.steps);
  EXPECT_EQ(r1.moves, r2.moves);
  EXPECT_EQ(OrderedSnapshot(via_reused), OrderedSnapshot(via_fresh));
}

TEST(TiledVsLegacyTest, CheckerForcesLegacyFallbackWithIdenticalResults) {
  // An active InvariantChecker validates legacy storage directly, so
  // layout=kTiled + invariants=kOn must silently run (and validate) the
  // legacy path — same results, arena untouched.
  Topology topo(2, 8, Wrap::kMesh);
  Network net(topo);
  FillPermutation(net, ReversalPermutation(topo), 2);
  const RunOutput tiled = RunOnce(topo, net, Opts(LayoutMode::kTiled));
  EngineOptions checked = Opts(LayoutMode::kTiled);
  checked.invariants = InvariantMode::kOn;
  MetricsRegistry reg;
  checked.metrics = &reg;
  ExpectSameRun(tiled, RunOnce(topo, net, checked));
  EXPECT_EQ(reg.gauge("engine.tiles_allocated").Value(), 0);
}

TEST(TiledVsLegacyTest, AutoLayoutStaysLegacyBelowThreshold) {
  // N = 64 << kTiledAutoThreshold: kAuto must keep the legacy layout,
  // observable through the arena gauges staying untouched.
  Topology topo(2, 8, Wrap::kMesh);
  Network net(topo);
  FillPermutation(net, ReversalPermutation(topo), 2);
  MetricsRegistry reg;
  EngineOptions opts = Opts(LayoutMode::kAuto);
  opts.metrics = &reg;
  const RunOutput out = RunOnce(topo, net, opts);
  EXPECT_TRUE(out.result.completed);
  EXPECT_EQ(reg.gauge("engine.tiles_allocated").Value(), 0);
  EXPECT_EQ(reg.gauge("engine.tiles_peak").Value(), 0);
}

TEST(TiledVsLegacyTest, ArenaMetricsSurfaceOccupancyAndHaloTraffic) {
  Topology topo(2, 12, Wrap::kMesh);  // 144 procs: 3 tiles, cross-tile halo
  Network net(topo);
  FillPermutation(net, ReversalPermutation(topo), 2);
  MetricsRegistry reg;
  EngineOptions opts = Opts(LayoutMode::kTiled);
  opts.metrics = &reg;
  const RunOutput out = RunOnce(topo, net, opts);
  EXPECT_TRUE(out.result.completed);
  // Peak occupancy reached every tile (a full permutation occupies the
  // whole mesh). Delivered packets stay resident in a plain Route, so the
  // tiles remain allocated through the final step.
  EXPECT_EQ(reg.gauge("engine.tiles_peak").Value(), 3);
  EXPECT_EQ(reg.gauge("engine.tiles_allocated").Value(), 3);
  // A reversal crosses tile boundaries, so the halo actually carried bytes.
  EXPECT_GT(reg.counter("engine.halo_bytes").Total(), 0);
}

TEST(TiledVsLegacyTest, InjectorRunsFreeDrainedTiles) {
  // Under open-loop injection delivered packets are retired every step, so
  // a drained run must hand every tile back to the free list — the
  // footprint-tracks-occupancy property the layout exists for.
  Topology topo(2, 12, Wrap::kMesh);
  TrafficPattern pattern(topo, PatternKind::kUniform, /*seed=*/9);
  DriverOptions dopts;
  dopts.rate = 0.05;
  dopts.warmup_steps = 8;
  dopts.measure_steps = 32;
  dopts.drain = true;
  MetricsRegistry reg;
  EngineOptions eopts = Opts(LayoutMode::kTiled);
  eopts.metrics = &reg;
  const WorkloadResult res = RunOpenLoop(topo, pattern, dopts, eopts);
  ASSERT_GT(res.delivered, 0);
  EXPECT_EQ(res.offered, res.delivered);  // drained
  EXPECT_GT(reg.gauge("engine.tiles_peak").Value(), 0);
  EXPECT_EQ(reg.gauge("engine.tiles_allocated").Value(), 0);
}

// ---------------------------------------------------------------------------
// Checkpoint/resume under the tiled layout.

class CaptureSink final : public CheckpointSink {
 public:
  explicit CaptureSink(std::vector<std::int64_t> at) : at_(std::move(at)) {}
  bool Due(std::int64_t step) override {
    for (const std::int64_t s : at_) {
      if (s == step) return true;
    }
    return false;
  }
  void Save(const EngineCheckpointState& state, const char* cause) override {
    (void)cause;
    states_.push_back(state);
  }
  const std::vector<EngineCheckpointState>& states() const { return states_; }

 private:
  std::vector<std::int64_t> at_;
  std::vector<EngineCheckpointState> states_;
};

TEST(TiledCheckpointTest, ResumeMatchesUninterruptedRunEitherLayout) {
  Topology topo(2, 10, Wrap::kTorus);
  Rng rng(99);
  Network initial(topo);
  FillPermutation(initial, RandomPermutation(topo, rng), 2);

  const EngineOptions opts = Opts(LayoutMode::kTiled);
  RunOutput baseline = RunOnce(topo, initial, opts);
  ASSERT_TRUE(baseline.result.completed);
  ASSERT_GE(baseline.result.steps, 3);

  CaptureSink sink({1, baseline.result.steps / 2, baseline.result.steps - 1});
  EngineOptions sink_opts = opts;
  sink_opts.checkpoint = &sink;
  RunOutput with_sink = RunOnce(topo, initial, sink_opts);
  // Attaching the sink must not change a tiled run (Export at the clean
  // step boundary reproduces the legacy queue layout exactly).
  ExpectSameRun(baseline, with_sink);
  ASSERT_EQ(sink.states().size(), 3u);

  for (const EngineCheckpointState& state : sink.states()) {
    SCOPED_TRACE("resume from step " + std::to_string(state.step));
    // A checkpoint written under the tiled layout resumes under the same
    // configured layout — and the resumed run matches the baseline.
    Network net(topo);
    Engine engine(topo, opts);
    RunOutput resumed;
    resumed.result = engine.Resume(net, state);
    resumed.snapshot = OrderedSnapshot(net);
    ExpectSameRun(baseline, resumed);
  }
}

TEST(TiledCheckpointTest, ResumeRefusesCrossLayoutSnapshots) {
  // The options hash mixes the configured layout, so a snapshot taken
  // under kTiled cannot silently resume under kLegacy (or vice versa).
  Topology topo(2, 8, Wrap::kMesh);
  Network initial(topo);
  FillPermutation(initial, ReversalPermutation(topo), 2);
  const RouteResult probe = RunOnce(topo, initial, Opts(LayoutMode::kTiled))
                                .result;
  ASSERT_GE(probe.steps, 2);
  CaptureSink sink({1});
  EngineOptions tiled_opts = Opts(LayoutMode::kTiled);
  tiled_opts.checkpoint = &sink;
  RunOnce(topo, initial, tiled_opts);
  ASSERT_EQ(sink.states().size(), 1u);

  Network net(topo);
  Engine legacy(topo, Opts(LayoutMode::kLegacy));
  EXPECT_THROW(legacy.Resume(net, sink.states()[0]), std::invalid_argument);
}

// ---------------------------------------------------------------------------
// Open-loop injection: the delivery trace (ids, steps, order) is hashed by
// the driver; legacy and tiled must agree bit-for-bit.

TEST(TiledOpenLoopTest, DeliveryHashMatchesLegacyAcrossThreadCounts) {
  Topology topo(2, 8, Wrap::kTorus);
  TrafficPattern pattern(topo, PatternKind::kUniform, /*seed=*/5);
  DriverOptions dopts;
  dopts.rate = 0.05;
  dopts.warmup_steps = 16;
  dopts.measure_steps = 64;
  dopts.drain = true;
  dopts.seed = 5;

  const WorkloadResult legacy =
      RunOpenLoop(topo, pattern, dopts, Opts(LayoutMode::kLegacy));
  ASSERT_GT(legacy.delivered, 0);
  EXPECT_EQ(legacy.offered, legacy.delivered);  // drained
  for (unsigned workers : {0u, 4u}) {
    ThreadPool pool(workers);
    EngineOptions eopts = Opts(LayoutMode::kTiled);
    eopts.pool = &pool;
    const WorkloadResult tiled = RunOpenLoop(topo, pattern, dopts, eopts);
    EXPECT_EQ(tiled.delivery_hash, legacy.delivery_hash);
    EXPECT_EQ(tiled.offered, legacy.offered);
    EXPECT_EQ(tiled.delivered, legacy.delivered);
    EXPECT_EQ(tiled.route.steps, legacy.route.steps);
    EXPECT_EQ(tiled.latency_p50, legacy.latency_p50);
    EXPECT_EQ(tiled.latency_max, legacy.latency_max);
  }
}

TEST(TiledOpenLoopTest, PreloadedPacketsNormalizeIdentically) {
  // Packets already sitting in the network when an injector run starts
  // (tag = 1 stamping, zero-hop retirement) — the preload contract.
  Topology topo(2, 9, Wrap::kMesh);
  TrafficPattern pattern(topo, PatternKind::kTranspose, /*seed=*/2);
  DriverOptions dopts;
  dopts.rate = 0.1;
  dopts.warmup_steps = 8;
  dopts.measure_steps = 32;
  dopts.drain = true;

  WorkloadResult results[2];
  int i = 0;
  for (LayoutMode layout : {LayoutMode::kLegacy, LayoutMode::kTiled}) {
    OpenLoopInjector injector(topo, pattern, dopts);
    Network net(topo);
    // Preload a few packets, one already at its destination (zero-hop).
    net.Add(0, MakePacket(-10, topo.size() - 1));
    net.Add(1, MakePacket(-11, 1));
    net.Add(2, MakePacket(-12, topo.size() / 2));
    EngineOptions eopts = Opts(layout);
    eopts.injector = &injector;
    Engine engine(topo, eopts);
    RouteResult route = engine.Route(net);
    results[i].route = route;
    results[i].delivery_hash = injector.delivery_hash();
    results[i].offered = injector.offered();
    results[i].delivered = injector.delivered();
    ++i;
  }
  EXPECT_EQ(results[0].delivery_hash, results[1].delivery_hash);
  EXPECT_EQ(results[0].offered, results[1].offered);
  EXPECT_EQ(results[0].delivered, results[1].delivered);
  EXPECT_EQ(results[0].route.steps, results[1].route.steps);
  EXPECT_EQ(results[0].route.moves, results[1].route.moves);
}

}  // namespace
}  // namespace mdmesh
