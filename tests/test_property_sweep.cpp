// Property sweep: deterministic pseudo-random sampling across the whole
// configuration space (algorithm x topology x dimension x side x grid x k x
// input x seed). Every sampled configuration must sort correctly — the
// broad-coverage complement to the targeted per-module tests.
#include <gtest/gtest.h>

#include "core/mdmesh.h"

namespace mdmesh {
namespace {

struct SampledConfig {
  SortAlgo algo;
  MeshSpec spec;
  int g;
  int k;
  InputKind input;
  std::uint64_t seed;
};

/// Draws a valid configuration from a seeded generator. Constraints:
/// g even, g | b (unshuffle arithmetic), sizes small enough to stay fast.
SampledConfig Sample(Rng& rng) {
  SampledConfig c{};
  const int algo_pick = static_cast<int>(rng.Below(5));
  c.algo = static_cast<SortAlgo>(algo_pick);
  const bool torus_algo = c.algo == SortAlgo::kTorus;
  // TorusSort requires a torus; others run on either (FullSort/SnakeSort
  // work on both, SimpleSort/CopySort are mesh algorithms but only their
  // time bounds care — geometry-wise they run on tori too; keep them on
  // meshes as in the paper).
  c.spec.wrap = torus_algo ? Wrap::kTorus
                           : (c.algo == SortAlgo::kFull && rng.Chance(0.5)
                                  ? Wrap::kTorus
                                  : Wrap::kMesh);
  switch (static_cast<int>(rng.Below(3))) {
    case 0:
      c.spec.d = 2;
      c.spec.n = static_cast<int>(8 << rng.Below(2));  // 8 or 16
      break;
    case 1:
      c.spec.d = 3;
      c.spec.n = 8;
      break;
    default:
      c.spec.d = 4;
      c.spec.n = 4;
      break;
  }
  c.g = 2;
  if (c.spec.d == 2 && c.spec.n == 16 && rng.Chance(0.5)) c.g = 4;
  c.k = 1 + static_cast<int>(rng.Below(3));
  if (c.algo == SortAlgo::kSnake) c.k = 1 + static_cast<int>(rng.Below(2));
  c.input = static_cast<InputKind>(rng.Below(5));
  c.seed = rng.Next();
  return c;
}

class PropertySweepTest : public ::testing::TestWithParam<int> {};

TEST_P(PropertySweepTest, SampledConfigurationSorts) {
  Rng rng(static_cast<std::uint64_t>(0xfeed + GetParam()));
  const SampledConfig c = Sample(rng);
  SCOPED_TRACE(std::string(SortAlgoName(c.algo)) + " on " + c.spec.ToString() +
               " g=" + std::to_string(c.g) + " k=" + std::to_string(c.k) +
               " input=" + std::to_string(static_cast<int>(c.input)));
  Topology topo = c.spec.Build();
  BlockGrid grid(topo, c.g);
  Network net(topo);
  FillInput(net, grid, c.k, c.input, c.seed);
  SortOptions opts;
  opts.g = c.g;
  opts.k = c.k;
  opts.seed = c.seed;
  SortResult result = RunSort(c.algo, net, grid, opts);
  EXPECT_TRUE(result.sorted) << result.Summary(topo.Diameter());
  EXPECT_TRUE(result.completed);
}

INSTANTIATE_TEST_SUITE_P(Samples, PropertySweepTest, ::testing::Range(0, 40));

class RoutingSweepTest : public ::testing::TestWithParam<int> {};

TEST_P(RoutingSweepTest, SampledPermutationRoutes) {
  Rng rng(static_cast<std::uint64_t>(0xbeef + GetParam()));
  MeshSpec spec;
  spec.wrap = rng.Chance(0.5) ? Wrap::kTorus : Wrap::kMesh;
  spec.d = 2 + static_cast<int>(rng.Below(2));
  spec.n = spec.d == 2 ? 8 : 6;
  Topology topo = spec.Build();
  Rng perm_rng = rng.Split(1);
  std::vector<ProcId> dest;
  switch (static_cast<int>(rng.Below(3))) {
    case 0:
      dest = RandomPermutation(topo, perm_rng);
      break;
    case 1:
      dest = ReversalPermutation(topo);
      break;
    default:
      dest = TransposePermutation(topo);
      break;
  }
  TwoPhaseOptions opts;
  opts.g = 2;
  opts.randomized = rng.Chance(0.3);
  opts.seed = rng.Next();
  TwoPhaseResult r = RouteTwoPhase(topo, dest, opts);
  EXPECT_TRUE(r.delivered) << spec.ToString();
  // Sound per-instance lower bound.
  EXPECT_GE(r.total_steps, ComputeOfflineBound(topo, dest).bound());
}

INSTANTIATE_TEST_SUITE_P(Samples, RoutingSweepTest, ::testing::Range(0, 25));

class HRelationSweepTest : public ::testing::TestWithParam<int> {};

TEST_P(HRelationSweepTest, GreedyRoutesWithinScaledEnvelope) {
  Rng rng(static_cast<std::uint64_t>(0xabba + GetParam()));
  MeshSpec spec;
  spec.wrap = rng.Chance(0.5) ? Wrap::kTorus : Wrap::kMesh;
  spec.d = 2 + static_cast<int>(rng.Below(2));
  spec.n = spec.d == 2 ? 8 : 6;
  Topology topo = spec.Build();
  const std::int64_t h = 1 + static_cast<std::int64_t>(rng.Below(3));
  SCOPED_TRACE(spec.ToString() + " h=" + std::to_string(h));
  auto rel = HRelation(topo, h, rng);
  ASSERT_EQ(rel.size(), static_cast<std::size_t>(topo.size() * h));
  Network net(topo);
  std::int64_t id = 0;
  for (const auto& [src, dst] : rel) {
    Packet pkt;
    pkt.id = id;
    pkt.key = static_cast<std::uint64_t>(id++);
    pkt.dest = dst;
    net.Add(src, pkt);
  }
  Engine engine(topo);
  RouteResult r = engine.Route(net);
  EXPECT_TRUE(r.completed);
  // Every processor sends and receives exactly h packets, so the greedy
  // schedule must stay inside h times the single-relation envelope.
  EXPECT_LE(r.steps, h * (topo.Diameter() + 2 * spec.n) + 8);
}

INSTANTIATE_TEST_SUITE_P(Samples, HRelationSweepTest, ::testing::Range(0, 15));

}  // namespace
}  // namespace mdmesh
