#include "routing/two_phase.h"

#include <gtest/gtest.h>

#include <tuple>

#include "net/engine.h"
#include "routing/permutations.h"
#include "util/rng.h"

namespace mdmesh {
namespace {

class TwoPhaseDeliveryTest
    : public ::testing::TestWithParam<std::tuple<int, int, Wrap, const char*>> {};

TEST_P(TwoPhaseDeliveryTest, DeliversEveryPermutation) {
  auto [d, n, wrap, perm] = GetParam();
  Topology topo(d, n, wrap);
  std::vector<ProcId> dest;
  std::string name = perm;
  if (name == "random") {
    Rng rng(7);
    dest = RandomPermutation(topo, rng);
  } else if (name == "reversal") {
    dest = ReversalPermutation(topo);
  } else {
    dest = TransposePermutation(topo);
  }
  TwoPhaseOptions opts;
  opts.g = 2;
  TwoPhaseResult r = RouteTwoPhase(topo, dest, opts);
  EXPECT_TRUE(r.delivered) << "d=" << d << " n=" << n << " perm=" << name;
}

INSTANTIATE_TEST_SUITE_P(
    Cases, TwoPhaseDeliveryTest,
    ::testing::Values(std::tuple{2, 8, Wrap::kMesh, "random"},
                      std::tuple{2, 8, Wrap::kMesh, "reversal"},
                      std::tuple{2, 8, Wrap::kTorus, "reversal"},
                      std::tuple{2, 16, Wrap::kMesh, "transpose"},
                      std::tuple{3, 6, Wrap::kMesh, "random"},
                      std::tuple{3, 6, Wrap::kTorus, "random"},
                      std::tuple{3, 8, Wrap::kMesh, "reversal"},
                      std::tuple{4, 4, Wrap::kMesh, "reversal"}));

TEST(TwoPhaseTest, MidpointSetsNonEmptyWithPaperNu) {
  // Theorem 5.1 regime: nu = n/2 on the mesh keeps S_nu(X,Y) non-empty for
  // every block pair.
  Topology topo(2, 16, Wrap::kMesh);
  BlockGrid grid(topo, 2);
  EXPECT_GT(MinMidpointSetSize(grid, topo.side() / 2.0), 0);
}

TEST(TwoPhaseTest, MidpointSetGrowsWithNu) {
  Topology topo(2, 16, Wrap::kMesh);
  BlockGrid grid(topo, 4);
  const std::int64_t tight = MinMidpointSetSize(grid, 0.0);
  const std::int64_t loose = MinMidpointSetSize(grid, topo.side() / 2.0);
  EXPECT_LE(tight, loose);
  EXPECT_GT(loose, 0);
}

TEST(TwoPhaseTest, ReversalStaysNearDPlusN) {
  // Theorem 5.1: D + n + o(n) on the mesh. Allow generous small-n slack but
  // demand clear separation from 2D (what plain greedy needs on permutations
  // that funnel).
  Topology topo(2, 16, Wrap::kMesh);
  TwoPhaseOptions opts;
  opts.g = 2;
  TwoPhaseResult r = RouteTwoPhase(topo, ReversalPermutation(topo), opts);
  EXPECT_TRUE(r.delivered);
  const auto D = static_cast<double>(topo.Diameter());
  EXPECT_LT(static_cast<double>(r.total_steps), 1.9 * D);
}

TEST(TwoPhaseTest, RandomizedVariantAlsoDelivers) {
  Topology topo(2, 8, Wrap::kMesh);
  Rng rng(15);
  auto dest = RandomPermutation(topo, rng);
  TwoPhaseOptions opts;
  opts.g = 2;
  opts.randomized = true;
  opts.seed = 23;
  TwoPhaseResult r = RouteTwoPhase(topo, dest, opts);
  EXPECT_TRUE(r.delivered);
}

TEST(TwoPhaseTest, DeterministicGivenSeed) {
  Topology topo(2, 8, Wrap::kMesh);
  auto dest = ReversalPermutation(topo);
  TwoPhaseOptions opts;
  opts.g = 2;
  auto a = RouteTwoPhase(topo, dest, opts);
  auto b = RouteTwoPhase(topo, dest, opts);
  EXPECT_EQ(a.total_steps, b.total_steps);
  EXPECT_EQ(a.max_queue, b.max_queue);
}

TEST(TwoPhaseTest, IdentityPermutationIsFast) {
  Topology topo(2, 8, Wrap::kMesh);
  TwoPhaseOptions opts;
  opts.g = 2;
  TwoPhaseResult r = RouteTwoPhase(topo, IdentityPermutation(topo), opts);
  EXPECT_TRUE(r.delivered);
  // Packets still take the detour through a midpoint, but never farther
  // than one phase's reach each way.
  EXPECT_LE(r.total_steps, 2 * topo.Diameter());
}

TEST(TwoPhaseTest, TorusUsesTighterNuByDefault) {
  Topology topo(2, 16, Wrap::kTorus);
  auto dest = AntipodalPermutation(topo);
  TwoPhaseOptions opts;
  opts.g = 4;
  TwoPhaseResult r = RouteTwoPhase(topo, dest, opts);
  EXPECT_TRUE(r.delivered);
  EXPECT_DOUBLE_EQ(r.nu_used, topo.side() / 16.0);
}


TEST(TwoPhaseTest, OverlappedModeDeliversEverywhere) {
  for (Wrap wrap : {Wrap::kMesh, Wrap::kTorus}) {
    Topology topo(2, 16, wrap);
    Rng rng(19);
    for (auto dest : {RandomPermutation(topo, rng), ReversalPermutation(topo),
                      TransposePermutation(topo)}) {
      TwoPhaseOptions opts;
      opts.g = 2;
      opts.overlap = true;
      TwoPhaseResult r = RouteTwoPhase(topo, dest, opts);
      EXPECT_TRUE(r.delivered);
    }
  }
}

TEST(TwoPhaseTest, OverlappedNeverSlowerThanSequential) {
  Topology topo(2, 32, Wrap::kMesh);
  Rng rng(23);
  for (auto dest : {RandomPermutation(topo, rng), ReversalPermutation(topo),
                    TransposePermutation(topo)}) {
    TwoPhaseOptions seq;
    seq.g = 4;
    TwoPhaseOptions ovl = seq;
    ovl.overlap = true;
    TwoPhaseResult a = RouteTwoPhase(topo, dest, seq);
    TwoPhaseResult b = RouteTwoPhase(topo, dest, ovl);
    ASSERT_TRUE(a.delivered);
    ASSERT_TRUE(b.delivered);
    EXPECT_LE(b.total_steps, a.total_steps);
  }
}

TEST(TwoPhaseTest, OverlappedHitsDiameterOnReversalAtScale) {
  // The Section 6 open-question finding (see bench_routing_mesh): with no
  // phase barrier, reversal routes in exactly D steps.
  Topology topo(2, 64, Wrap::kMesh);
  TwoPhaseOptions opts;
  opts.g = 4;
  opts.overlap = true;
  TwoPhaseResult r = RouteTwoPhase(topo, ReversalPermutation(topo), opts);
  ASSERT_TRUE(r.delivered);
  EXPECT_LE(r.total_steps, topo.Diameter() + topo.side() / 4);
}

TEST(TwoPhaseTest, OverlappedMidpointStartRetargetsImmediately) {
  // A packet whose midpoint equals its source must not get stuck.
  Topology topo(1, 8, Wrap::kMesh);
  Network net(topo);
  Packet pkt;
  pkt.id = 0;
  pkt.dest = 3;               // midpoint = source of leg 2
  pkt.tag = 6;                // final destination
  pkt.flags = Packet::kTwoLeg;
  net.Add(3, pkt);            // starts AT the midpoint
  Engine engine(topo);
  RouteResult r = engine.Route(net);
  EXPECT_TRUE(r.completed);
  EXPECT_EQ(r.steps, 3);      // straight to the final destination
  EXPECT_EQ(net.At(6).size(), 1u);
}

}  // namespace
}  // namespace mdmesh
