#include "core/runner.h"

#include <gtest/gtest.h>

#include "core/report.h"

namespace mdmesh {
namespace {

TEST(RunnerTest, ClaimedCoefficients) {
  EXPECT_DOUBLE_EQ(ClaimedCoefficient(SortAlgo::kSimple, Wrap::kMesh), 1.5);
  EXPECT_DOUBLE_EQ(ClaimedCoefficient(SortAlgo::kCopy, Wrap::kMesh), 1.25);
  EXPECT_DOUBLE_EQ(ClaimedCoefficient(SortAlgo::kTorus, Wrap::kTorus), 1.5);
  EXPECT_DOUBLE_EQ(ClaimedCoefficient(SortAlgo::kFull, Wrap::kMesh), 2.0);
}

TEST(RunnerTest, DefaultBlocksPerSideRespectsConstraints) {
  for (const MeshSpec& spec : StandardMeshSweep()) {
    const int g = DefaultBlocksPerSide(spec);
    EXPECT_GE(g, 2);
    EXPECT_EQ(spec.n % g, 0) << spec.ToString();
    EXPECT_EQ((spec.n / g) % g, 0) << spec.ToString();  // g | b
  }
  // n=64, d=2: can afford g=4 (m^2 = 256 <= 2*B = 2*256^... b=16, B=256).
  EXPECT_EQ(DefaultBlocksPerSide({2, 64, Wrap::kMesh}), 4);
}

TEST(RunnerTest, SortExperimentEndToEnd) {
  SortOptions opts;
  SortRow row = RunSortExperiment(SortAlgo::kSimple, {2, 16, Wrap::kMesh}, opts);
  EXPECT_TRUE(row.result.sorted);
  EXPECT_EQ(row.diameter, 2 * 15);
  EXPECT_DOUBLE_EQ(row.claimed, 1.5);
  EXPECT_GT(row.ratio, 0.5);
  EXPECT_LT(row.ratio, 2.5);
}

TEST(RunnerTest, GreedyExperimentEndToEnd) {
  GreedyRow row = RunGreedyExperiment({2, 8, Wrap::kTorus}, 4, 7);
  EXPECT_TRUE(row.run.route.completed);
  EXPECT_EQ(row.num_perms, 4);
  EXPECT_EQ(row.run.route.packets, 4 * 64);
}

TEST(RunnerTest, SelectionExperimentEndToEnd) {
  SortOptions opts;
  SelectRow row = RunSelectionExperiment({2, 16, Wrap::kMesh}, opts);
  EXPECT_TRUE(row.correct);
  EXPECT_GT(row.result.candidates, 0);
}

TEST(RunnerTest, RoutingExperimentEndToEnd) {
  TwoPhaseOptions opts;
  opts.g = 2;
  RoutingRow row = RunRoutingExperiment({2, 8, Wrap::kMesh}, "reversal", opts);
  EXPECT_TRUE(row.two_phase.delivered);
  EXPECT_TRUE(row.baseline.route.completed);
  EXPECT_THROW(RunRoutingExperiment({2, 8, Wrap::kMesh}, "bogus", opts),
               std::invalid_argument);
}

TEST(RunnerTest, ReportTablesRender) {
  SortOptions opts;
  std::vector<SortRow> sort_rows{
      RunSortExperiment(SortAlgo::kSimple, {2, 8, Wrap::kMesh}, opts)};
  Table t1 = MakeSortTable(sort_rows);
  EXPECT_EQ(t1.rows(), 1u);
  EXPECT_NE(t1.ToString().find("SimpleSort"), std::string::npos);

  std::vector<GreedyRow> greedy_rows{RunGreedyExperiment({2, 8, Wrap::kMesh}, 1, 3)};
  EXPECT_EQ(MakeGreedyTable(greedy_rows).rows(), 1u);

  std::vector<SelectRow> select_rows{
      RunSelectionExperiment({2, 8, Wrap::kMesh}, opts)};
  EXPECT_EQ(MakeSelectionTable(select_rows).rows(), 1u);

  TwoPhaseOptions topts;
  topts.g = 2;
  std::vector<RoutingRow> routing_rows{
      RunRoutingExperiment({2, 8, Wrap::kMesh}, "random", topts)};
  EXPECT_EQ(MakeRoutingTable(routing_rows).rows(), 1u);
}

TEST(RunnerTest, MeshSpecHelpers) {
  MeshSpec spec{3, 8, Wrap::kTorus};
  EXPECT_EQ(spec.size(), 512);
  EXPECT_EQ(spec.diameter(), 12);
  EXPECT_NE(spec.ToString().find("torus"), std::string::npos);
  EXPECT_EQ(spec.Build().size(), 512);
}

TEST(RunnerTest, SweepsAreSimulable) {
  for (const auto& sweep :
       {StandardMeshSweep(), StandardTorusSweep(), HighDimMeshSweep()}) {
    for (const MeshSpec& spec : sweep) {
      EXPECT_LE(spec.size(), 1 << 20) << spec.ToString();
      EXPECT_GE(spec.d, 2);
    }
  }
}

}  // namespace
}  // namespace mdmesh
