#include "bounds/diamond.h"

#include <gtest/gtest.h>

#include <cmath>
#include <tuple>

#include "meshsim/geometry.h"
#include "meshsim/topology.h"

namespace mdmesh {
namespace {

TEST(DiamondTest, DistributionSumsToNd) {
  for (auto [d, n] : {std::pair{1, 8}, std::pair{2, 7}, std::pair{3, 5}, std::pair{5, 4}}) {
    auto dist = CenterDistanceDistribution(d, n);
    ASSERT_EQ(dist.size(), static_cast<std::size_t>(d * (n - 1) + 1));
    double sum = 0;
    for (double v : dist) sum += v;
    EXPECT_DOUBLE_EQ(sum, std::pow(n, d));
  }
}

TEST(DiamondTest, MatchesDirectEnumeration) {
  // The DP must agree exactly with brute-force counting on the topology.
  for (auto [d, n] : {std::pair{2, 6}, std::pair{2, 7}, std::pair{3, 4}, std::pair{3, 5}}) {
    Topology topo(d, n, Wrap::kMesh);
    auto dist = CenterDistanceDistribution(d, n);
    std::vector<std::int64_t> brute(dist.size(), 0);
    for (ProcId p = 0; p < topo.size(); ++p) {
      ++brute[static_cast<std::size_t>(HalfDistToCenter(topo, p))];
    }
    for (std::size_t h = 0; h < dist.size(); ++h) {
      EXPECT_DOUBLE_EQ(dist[h], static_cast<double>(brute[h]))
          << "d=" << d << " n=" << n << " h=" << h;
    }
  }
}

TEST(DiamondTest, VolumeMatchesCountWithin) {
  for (auto [d, n] : {std::pair{2, 8}, std::pair{3, 5}}) {
    Topology topo(d, n, Wrap::kMesh);
    for (double radius : {0.0, 1.0, 1.5, 2.0, 3.25, 10.0}) {
      EXPECT_DOUBLE_EQ(
          DiamondVolume(d, n, radius),
          static_cast<double>(CountWithinHalfDist(
              topo, static_cast<std::int64_t>(std::floor(2 * radius + 1e-9)))))
          << "d=" << d << " n=" << n << " r=" << radius;
    }
  }
}

TEST(DiamondTest, VolumeMonotoneInRadius) {
  for (double r = 0; r < 12; r += 0.5) {
    EXPECT_LE(DiamondVolume(3, 9, r), DiamondVolume(3, 9, r + 0.5));
  }
  EXPECT_EQ(DiamondVolume(3, 9, -1.0), 0.0);
  EXPECT_DOUBLE_EQ(DiamondVolume(3, 9, 100.0), std::pow(9, 3));
}

TEST(DiamondTest, SurfaceIsOuterShell) {
  // Volume(r) - Volume(r - 1) equals the shell count.
  const int d = 3, n = 9;
  for (double r : {2.0, 3.0, 5.0}) {
    EXPECT_DOUBLE_EQ(DiamondSurface(d, n, r),
                     DiamondVolume(d, n, r) - DiamondVolume(d, n, r - 1.0));
  }
}

TEST(DiamondTest, RadiusFormula) {
  EXPECT_DOUBLE_EQ(DiamondRadius(4, 9, 0.0), 8.0);  // (1-0)*4*8/4
  EXPECT_DOUBLE_EQ(DiamondRadius(4, 9, 0.5), 4.0);
}

TEST(DiamondTest, VolumeHalfAtGammaZeroLargeN) {
  // V_{d,0} is the D/4 diamond: about half the processors (Section 3.1).
  const double frac = VolumeDdGamma(2, 101, 0.0) / std::pow(101.0, 2);
  EXPECT_NEAR(frac, 0.5, 0.02);
}

TEST(DiamondTest, PointDistributionCenterEqualsCenterDistribution) {
  auto a = CenterDistanceDistribution(3, 7);
  auto b = PointDistanceDistribution(3, 7, 0);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t h = 0; h < a.size(); ++h) EXPECT_DOUBLE_EQ(a[h], b[h]);
}

TEST(DiamondTest, PointDistributionOffsetMatchesBruteForce) {
  const int d = 2, n = 7;
  const std::int64_t half_offset = 4;  // x_i = 3 + 2 = 5 in every dimension
  Topology topo(d, n, Wrap::kMesh);
  auto dist = PointDistanceDistribution(d, n, half_offset);
  std::vector<std::int64_t> brute(dist.size(), 0);
  for (ProcId p = 0; p < topo.size(); ++p) {
    Point c = topo.Coords(p);
    std::int64_t h = 0;
    for (int i = 0; i < d; ++i) {
      h += std::llabs(2ll * c[static_cast<std::size_t>(i)] - (n - 1) - half_offset);
    }
    ++brute[static_cast<std::size_t>(h)];
  }
  for (std::size_t h = 0; h < dist.size(); ++h) {
    EXPECT_DOUBLE_EQ(dist[h], static_cast<double>(brute[h])) << "h=" << h;
  }
}

TEST(DiamondTest, BallFractionBounds) {
  EXPECT_DOUBLE_EQ(BallFractionAround(2, 9, 0, 100.0), 1.0);
  EXPECT_DOUBLE_EQ(BallFractionAround(2, 9, 0, -1.0), 0.0);
  const double near = BallFractionAround(2, 9, 0, 1.0);
  EXPECT_GT(near, 0.0);
  EXPECT_LT(near, 0.2);
}

TEST(DiamondTest, SweepMatchesOneShot) {
  CenterDistanceSweep sweep(9);
  for (int d = 1; d <= 6; ++d) {
    auto direct = CenterDistanceDistribution(d, 9);
    const auto& cached = sweep.Distribution(d);
    ASSERT_EQ(direct.size(), cached.size());
    for (std::size_t h = 0; h < direct.size(); ++h) {
      EXPECT_DOUBLE_EQ(direct[h], cached[h]) << "d=" << d << " h=" << h;
    }
  }
}

TEST(DiamondTest, SweepNormalizedQuantities) {
  CenterDistanceSweep sweep(9);
  EXPECT_NEAR(sweep.VolumeNormalized(3, 0.0),
              VolumeDdGamma(3, 9, 0.0) / std::pow(9.0, 3), 1e-12);
  EXPECT_NEAR(sweep.SurfaceNormalized(3, 0.2),
              SurfaceDdGamma(3, 9, 0.2) / std::pow(9.0, 2), 1e-12);
}

TEST(DiamondTest, VolumeDecaysWithGamma) {
  for (double g1 = 0.0; g1 < 0.8; g1 += 0.2) {
    EXPECT_GE(VolumeDdGamma(4, 9, g1), VolumeDdGamma(4, 9, g1 + 0.2));
  }
}

}  // namespace
}  // namespace mdmesh
