// Differential testing: the optimized Engine vs the literal ReferenceEngine
// re-implementation of the model semantics. Any divergence in step counts,
// move counts, queue maxima, arrival times, or final placement is a
// semantics bug in one of them.
#include <gtest/gtest.h>

#include <algorithm>
#include <tuple>

#include "net/engine.h"
#include "net/reference_engine.h"
#include "routing/permutations.h"
#include "util/rng.h"

namespace mdmesh {
namespace {

/// Canonical form of a network's contents: per processor, the sorted
/// (key, id, dest, arrived) tuples (queue order is unspecified).
using Snapshot =
    std::vector<std::vector<std::tuple<std::uint64_t, std::int64_t, ProcId, std::int32_t>>>;

Snapshot Canonicalize(const Network& net) {
  Snapshot snap(static_cast<std::size_t>(net.topo().size()));
  net.ForEach([&](ProcId p, const Packet& pkt) {
    snap[static_cast<std::size_t>(p)].emplace_back(pkt.key, pkt.id, pkt.dest,
                                                   pkt.arrived);
  });
  for (auto& q : snap) std::sort(q.begin(), q.end());
  return snap;
}

void ExpectIdenticalRuns(const Topology& topo, const Network& initial) {
  Network a = initial;
  Network b = initial;
  Engine optimized(topo);
  ReferenceEngine reference(topo);
  RouteResult ra = optimized.Route(a);
  RouteResult rb = reference.Route(b);
  EXPECT_EQ(ra.steps, rb.steps);
  EXPECT_EQ(ra.moves, rb.moves);
  EXPECT_EQ(ra.max_queue, rb.max_queue);
  EXPECT_EQ(ra.packets, rb.packets);
  EXPECT_EQ(ra.completed, rb.completed);
  EXPECT_EQ(ra.max_distance, rb.max_distance);
  EXPECT_EQ(ra.max_overshoot, rb.max_overshoot);
  EXPECT_EQ(ra.links, rb.links);
  EXPECT_EQ(Canonicalize(a), Canonicalize(b));
}

class DifferentialTest
    : public ::testing::TestWithParam<std::tuple<int, int, Wrap, int>> {};

TEST_P(DifferentialTest, EnginesAgreeOnRandomLoads) {
  auto [d, n, wrap, perms] = GetParam();
  Topology topo(d, n, wrap);
  Network net(topo);
  Rng rng(static_cast<std::uint64_t>(1000 * d + 10 * n + perms));
  std::int64_t id = 0;
  for (int t = 0; t < perms; ++t) {
    Rng perm_rng = rng.Split(static_cast<std::uint64_t>(t));
    auto dest = RandomPermutation(topo, perm_rng);
    for (ProcId p = 0; p < topo.size(); ++p) {
      Packet pkt;
      pkt.id = id++;
      pkt.key = static_cast<std::uint64_t>(pkt.id);
      pkt.dest = dest[static_cast<std::size_t>(p)];
      pkt.klass = static_cast<std::uint16_t>(t % d);
      net.Add(p, pkt);
    }
  }
  ExpectIdenticalRuns(topo, net);
}

INSTANTIATE_TEST_SUITE_P(Workloads, DifferentialTest,
                         ::testing::Values(std::tuple{1, 12, Wrap::kMesh, 1},
                                           std::tuple{2, 6, Wrap::kMesh, 1},
                                           std::tuple{2, 6, Wrap::kMesh, 3},
                                           std::tuple{2, 6, Wrap::kTorus, 2},
                                           std::tuple{2, 8, Wrap::kTorus, 4},
                                           std::tuple{3, 4, Wrap::kMesh, 2},
                                           std::tuple{3, 4, Wrap::kTorus, 3},
                                           std::tuple{4, 3, Wrap::kMesh, 1}));

TEST(DifferentialTest, AgreeOnStructuredPermutations) {
  for (Wrap wrap : {Wrap::kMesh, Wrap::kTorus}) {
    Topology topo(2, 8, wrap);
    for (auto dest : {ReversalPermutation(topo), TransposePermutation(topo)}) {
      Network net(topo);
      for (ProcId p = 0; p < topo.size(); ++p) {
        Packet pkt;
        pkt.id = p;
        pkt.dest = dest[static_cast<std::size_t>(p)];
        net.Add(p, pkt);
      }
      ExpectIdenticalRuns(topo, net);
    }
  }
}

TEST(DifferentialTest, AgreeOnTwoLegPackets) {
  Topology topo(2, 8, Wrap::kMesh);
  Rng rng(99);
  Network net(topo);
  auto mid = RandomPermutation(topo, rng);
  auto fin = RandomPermutation(topo, rng);
  for (ProcId p = 0; p < topo.size(); ++p) {
    Packet pkt;
    pkt.id = p;
    pkt.dest = mid[static_cast<std::size_t>(p)];
    pkt.tag = fin[static_cast<std::size_t>(p)];
    pkt.flags = Packet::kTwoLeg;
    pkt.klass = static_cast<std::uint16_t>(p % 2);
    net.Add(p, pkt);
  }
  ExpectIdenticalRuns(topo, net);
}

TEST(DifferentialTest, AgreeOnFunnel) {
  // Heavy contention: everyone targets one corner.
  Topology topo(2, 6, Wrap::kMesh);
  Network net(topo);
  for (ProcId p = 0; p < topo.size(); ++p) {
    Packet pkt;
    pkt.id = p;
    pkt.dest = 0;
    net.Add(p, pkt);
  }
  ExpectIdenticalRuns(topo, net);
}

TEST(DifferentialTest, AgreeOnEmptyAndTrivial) {
  Topology topo(2, 4, Wrap::kMesh);
  Network empty(topo);
  ExpectIdenticalRuns(topo, empty);

  Network home(topo);
  Packet pkt;
  pkt.id = 1;
  pkt.dest = 5;
  home.Add(5, pkt);
  ExpectIdenticalRuns(topo, home);
}

}  // namespace
}  // namespace mdmesh
