// Tiled packet storage: the bit-sliced address map and the tile arena
// (net/tile_arena.h). The map tests pin the property the whole layout
// rests on — processor -> (tile, slot) is a bijection, including partial
// last tiles on non-power-of-two meshes — and the arena tests pin the
// free-list recycling that keeps the footprint proportional to occupancy.
#include <gtest/gtest.h>

#include <cstdint>
#include <tuple>
#include <vector>

#include "meshsim/topology.h"
#include "net/tile_arena.h"

namespace mdmesh {
namespace {

// --- TileMap -------------------------------------------------------------

TEST(TileMapTest, BijectionOverNonPowerOfTwoMeshes) {
  // Every (d, n) here has N = n^d not a multiple of 64, so the last tile is
  // partial; d spans the dimensions the engine actually runs.
  const std::tuple<int, int> specs[] = {{2, 9},  {2, 23}, {3, 5},
                                        {3, 7},  {4, 3},  {4, 5}};
  for (const auto& [d, n] : specs) {
    Topology topo(d, n, Wrap::kMesh);
    const ProcId N = topo.size();
    const std::int64_t tiles = TileMap::TileCount(N);
    EXPECT_EQ(tiles, (N + kTileSlots - 1) / kTileSlots);
    std::vector<std::uint8_t> hit(
        static_cast<std::size_t>(tiles * kTileSlots), 0);
    for (ProcId p = 0; p < N; ++p) {
      const std::int64_t t = TileMap::TileOf(p);
      const int s = TileMap::SlotOf(p);
      ASSERT_GE(t, 0);
      ASSERT_LT(t, tiles);
      ASSERT_GE(s, 0);
      ASSERT_LT(s, kTileSlots);
      // Round trip: ProcOf inverts (TileOf, SlotOf).
      ASSERT_EQ(TileMap::ProcOf(t, s), p) << "d=" << d << " n=" << n;
      // Injective: no two processors share a (tile, slot) cell.
      std::uint8_t& cell =
          hit[static_cast<std::size_t>(t * kTileSlots + s)];
      ASSERT_EQ(cell, 0) << "collision at tile " << t << " slot " << s;
      cell = 1;
    }
    // Full tiles are saturated: every slot of every non-final tile is hit.
    for (std::int64_t t = 0; t + 1 < tiles; ++t) {
      for (int s = 0; s < kTileSlots; ++s) {
        EXPECT_EQ(hit[static_cast<std::size_t>(t * kTileSlots + s)], 1);
      }
    }
  }
}

TEST(TileMapTest, SlotForLowVisitsProcessorsInAscendingIdOrder) {
  for (std::int64_t tile : {std::int64_t{0}, std::int64_t{1},
                            std::int64_t{63}, std::int64_t{64},
                            std::int64_t{1'000'003}}) {
    ProcId prev = -1;
    for (int low = 0; low < kTileSlots; ++low) {
      const int slot = TileMap::SlotForLow(tile, low);
      const ProcId p = TileMap::ProcOf(tile, slot);
      EXPECT_EQ(p, (tile << kTileSlotBits) | low);
      EXPECT_GT(p, prev);  // ascending-id iteration order
      prev = p;
    }
  }
}

TEST(TileMapTest, SwizzleDecorrelatesLowBits) {
  // Processors with equal low bits land in different slots on tiles whose
  // low tile bits differ — the bank-swizzle property that spreads strided
  // traffic across column positions.
  EXPECT_NE(TileMap::SlotOf(TileMap::ProcOf(0, 0) /* p = 0 */),
            TileMap::SlotOf((std::int64_t{1} << kTileSlotBits) | 0));
}

// --- TileArena -----------------------------------------------------------

TEST(TileArenaTest, EnsureIsIdempotentAndFreeRecyclesBlocks) {
  Topology topo(2, 12, Wrap::kMesh);  // N = 144: two full tiles + partial
  TileArena arena(topo);
  EXPECT_EQ(arena.tiles(), 3);
  EXPECT_EQ(arena.live_tiles(), 0);

  const std::int32_t ph0 = arena.Ensure(0);
  EXPECT_TRUE(arena.IsLive(0));
  EXPECT_EQ(arena.Phys(0), ph0);
  EXPECT_EQ(arena.Ensure(0), ph0);  // already live: no reallocation
  EXPECT_EQ(arena.live_tiles(), 1);
  EXPECT_EQ(arena.total_allocs(), 1);

  const std::int32_t ph1 = arena.Ensure(1);
  EXPECT_NE(ph1, ph0);
  EXPECT_EQ(arena.live_tiles(), 2);
  EXPECT_EQ(arena.peak_tiles(), 2);

  arena.Free(0);
  EXPECT_FALSE(arena.IsLive(0));
  EXPECT_EQ(arena.live_tiles(), 1);
  EXPECT_EQ(arena.peak_tiles(), 2);  // peak is sticky

  // The freed physical block is recycled for the next Ensure: the arena's
  // footprint tracks occupancy, not the number of distinct tiles touched.
  const std::int32_t ph2 = arena.Ensure(2);
  EXPECT_EQ(ph2, ph0);
  EXPECT_EQ(arena.live_tiles(), 2);
  EXPECT_EQ(arena.peak_tiles(), 2);
}

TEST(TileArenaTest, LiveBitsTrackTheDirectory) {
  Topology topo(3, 10, Wrap::kMesh);  // N = 1000 -> 16 tiles
  TileArena arena(topo);
  arena.Ensure(0);
  arena.Ensure(5);
  arena.Ensure(15);
  ASSERT_EQ(arena.live_bits().size(), 1u);
  EXPECT_EQ(arena.live_bits()[0],
            (std::uint64_t{1} << 0) | (std::uint64_t{1} << 5) |
                (std::uint64_t{1} << 15));
  arena.Free(5);
  EXPECT_EQ(arena.live_bits()[0],
            (std::uint64_t{1} << 0) | (std::uint64_t{1} << 15));
}

TEST(TileArenaTest, EnsureZeroesHeaderOnRebind) {
  Topology topo(2, 12, Wrap::kMesh);
  TileArena arena(topo);
  const std::int32_t ph = arena.Ensure(0);
  arena.cnt(ph)[7] = 3;
  *arena.nonempty(ph) = 0xff;
  *arena.inflight(ph) = 0xf0;
  arena.pend(ph)[1] = 0x8;
  arena.ovf(ph).push_back(TileOvEntry{});
  arena.Free(0);

  // Rebinding the same physical block to a different tile must present a
  // clean header and an empty overflow vector.
  const std::int32_t ph2 = arena.Ensure(1);
  ASSERT_EQ(ph2, ph);
  for (int s = 0; s < kTileSlots; ++s) EXPECT_EQ(arena.cnt(ph2)[s], 0);
  EXPECT_EQ(*arena.nonempty(ph2), 0u);
  EXPECT_EQ(*arena.inflight(ph2), 0u);
  for (int l = 0; l < 2 * topo.dim(); ++l) EXPECT_EQ(arena.pend(ph2)[l], 0u);
  EXPECT_EQ(arena.ovf(ph2).size(), 0u);
}

TEST(TileArenaTest, ResetFreesEverythingAndClearsStats) {
  Topology topo(2, 12, Wrap::kMesh);
  TileArena arena(topo);
  arena.Ensure(0);
  arena.Ensure(1);
  arena.Ensure(2);
  arena.Reset();
  EXPECT_EQ(arena.live_tiles(), 0);
  EXPECT_EQ(arena.peak_tiles(), 0);
  EXPECT_EQ(arena.total_allocs(), 0);
  for (std::int64_t t = 0; t < arena.tiles(); ++t) {
    EXPECT_FALSE(arena.IsLive(t));
  }
  for (const std::uint64_t w : arena.live_bits()) EXPECT_EQ(w, 0u);
  // Blocks are retained: re-ensuring reuses them (no fresh allocation is
  // observable, but the recycled physical index range stays [0, 3)).
  EXPECT_LT(arena.Ensure(2), 3);
}

TEST(TileArenaTest, CoordColumnsMatchTopologyIncludingPartialLastTile) {
  Topology topo(2, 9, Wrap::kMesh);  // N = 81: tile 1 holds only 17 procs
  TileArena arena(topo);
  for (std::int64_t t = 0; t < arena.tiles(); ++t) {
    const std::int32_t ph = arena.Ensure(t);
    for (int slot = 0; slot < kTileSlots; ++slot) {
      const ProcId p = TileMap::ProcOf(t, slot);
      if (p >= topo.size()) continue;  // partial-tile hole: never read
      const Point pt = topo.Coords(p);
      for (int i = 0; i < topo.dim(); ++i) {
        EXPECT_EQ(arena.ccoord(ph)[i * kTileSlots + slot],
                  pt[static_cast<std::size_t>(i)])
            << "p=" << p << " dim=" << i;
      }
    }
  }
}

TEST(TileArenaTest, LaneRoundTripPreservesEveryFieldAndDestCoords) {
  Topology topo(3, 5, Wrap::kTorus);
  TileArena arena(topo);
  const std::int32_t ph = arena.Ensure(0);
  Packet in;
  in.key = 0xdeadbeefcafe1234ull;
  in.id = -77;
  in.tag = 41;
  in.dest = 113;
  in.dist0 = 9;
  in.arrived = -1;
  in.klass = 2;
  in.flags = Packet::kLockActive | (5u << 9);
  const std::int32_t dc[3] = {3, 2, 4};
  for (int k = 0; k < kTileLanes; ++k) {
    arena.WriteLane(ph, k, /*slot=*/17, in, dc);
    Packet out;
    arena.ReadLane(ph, k, 17, &out);
    EXPECT_EQ(out.key, in.key);
    EXPECT_EQ(out.id, in.id);
    EXPECT_EQ(out.tag, in.tag);
    EXPECT_EQ(out.dest, in.dest);
    EXPECT_EQ(out.dist0, in.dist0);
    EXPECT_EQ(out.arrived, in.arrived);
    EXPECT_EQ(out.klass, in.klass);
    EXPECT_EQ(out.flags, in.flags);
    for (int i = 0; i < 3; ++i) {
      EXPECT_EQ(arena.dc(ph)[(i * kTileLanes + k) * kTileSlots + 17], dc[i]);
    }
  }
}

TEST(TileArenaTest, BlockBytesAreCacheLineAligned) {
  for (int d : {2, 3, 4}) {
    Topology topo(d, 5, Wrap::kMesh);
    TileArena arena(topo);
    EXPECT_EQ(arena.block_bytes() % 64, 0u) << "d=" << d;
  }
}

}  // namespace
}  // namespace mdmesh
