// Fault-injection subsystem tests: FaultPlan construction and sampling, the
// engine's fault honoring and adaptive detours, the stall watchdog, the
// invariant checker, and chaos runs over randomized seeded plans.
#include "fault/fault_plan.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <stdexcept>
#include <tuple>
#include <vector>

#include "net/engine.h"
#include "routing/policy.h"
#include "util/rng.h"

namespace mdmesh {
namespace {

Packet MakePacket(std::int64_t id, ProcId dest, std::uint16_t klass = 0) {
  Packet pkt;
  pkt.id = id;
  pkt.key = static_cast<std::uint64_t>(id);
  pkt.dest = dest;
  pkt.klass = klass;
  return pkt;
}

/// Final placement fingerprint: (processor, id, arrived) for every packet,
/// in a canonical order. Two runs that agree here are indistinguishable.
std::vector<std::tuple<ProcId, std::int64_t, std::int32_t>> Placement(
    const Network& net) {
  std::vector<std::tuple<ProcId, std::int64_t, std::int32_t>> out;
  net.ForEach([&](ProcId p, const Packet& pkt) {
    out.emplace_back(p, pkt.id, pkt.arrived);
  });
  std::sort(out.begin(), out.end());
  return out;
}

// ---------------------------------------------------------------------------
// FaultPlan construction.

TEST(FaultPlanTest, KillLinkIsDirectedAndSkipsMeshBoundary) {
  Topology topo(2, 4, Wrap::kMesh);
  FaultPlan plan(topo);
  EXPECT_TRUE(plan.empty());
  plan.KillLink(0, 0, 1);
  EXPECT_TRUE(plan.LinkDead(0, 0, 1));
  EXPECT_FALSE(plan.LinkDead(0, 0, 0));  // the reverse direction lives
  EXPECT_EQ(plan.dead_link_count(), 1);
  plan.KillLink(0, 0, 1);  // idempotent
  EXPECT_EQ(plan.dead_link_count(), 1);
  plan.KillLink(0, 0, 0);  // off the mesh boundary: no such link
  EXPECT_EQ(plan.dead_link_count(), 1);
  plan.KillLinkPair(0, 1, 1);
  EXPECT_EQ(plan.dead_link_count(), 3);
  EXPECT_FALSE(plan.empty());
}

TEST(FaultPlanTest, KillNodeSeversBothDirections) {
  Topology topo(2, 4, Wrap::kTorus);
  FaultPlan plan(topo);
  Point c{};
  c[0] = 1;
  c[1] = 1;
  const ProcId p = topo.Id(c);
  plan.KillNode(p);
  EXPECT_TRUE(plan.NodeDead(p));
  EXPECT_EQ(plan.dead_node_count(), 1);
  // All 4 outgoing links die, plus each neighbor's link back toward p.
  EXPECT_EQ(plan.dead_link_count(), 8);
  for (int dim = 0; dim < 2; ++dim) {
    for (int dir = 0; dir < 2; ++dir) {
      EXPECT_TRUE(plan.LinkDead(p, dim, dir));
      const ProcId q = topo.Neighbor(p, dim, dir);
      EXPECT_TRUE(plan.LinkDead(q, dim, 1 - dir));
    }
  }
  EXPECT_EQ(plan.AliveNodes().size(), static_cast<std::size_t>(topo.size() - 1));
}

TEST(FaultPlanTest, ConnectivityIsStronglyDirected) {
  // A torus ring stays strongly connected after losing one direction of one
  // link (everyone can still go the long way around) ...
  Topology ring(1, 4, Wrap::kTorus);
  FaultPlan one_way(ring);
  one_way.KillLink(0, 0, 1);
  EXPECT_TRUE(one_way.Connected());
  // ... but a mesh path is cut by killing both directions of an edge.
  Topology path(1, 4, Wrap::kMesh);
  FaultPlan cut(path);
  cut.KillLinkPair(1, 0, 1);
  EXPECT_FALSE(cut.Connected());
  // A 2D mesh minus one interior node keeps the rest connected.
  Topology grid(2, 4, Wrap::kMesh);
  FaultPlan holed(grid);
  Point c{};
  c[0] = 1;
  c[1] = 1;
  holed.KillNode(grid.Id(c));
  EXPECT_TRUE(holed.Connected());
}

TEST(FaultPlanTest, FlapEventsSortDownBeforeUpAtSameStep) {
  Topology topo(1, 2, Wrap::kMesh);
  FaultPlan plan(topo);
  // Two overlapping flaps of the same link: [1, 5] and [3, 7].
  plan.AddFlap(0, 0, 1, 1, 5);
  plan.AddFlap(0, 0, 1, 3, 5);
  EXPECT_EQ(plan.flap_count(), 2u);
  EXPECT_EQ(plan.max_flap_duration(), 5);
  const auto events = plan.Events();
  ASSERT_EQ(events.size(), 4u);
  std::int32_t active = 0;
  for (const FaultPlan::FlapEvent& ev : events) {
    active += ev.delta;
    ASSERT_GE(active, 0);  // -1 sorts before +1, so counts never go negative
  }
  EXPECT_EQ(active, 0);
  EXPECT_EQ(events.front().step, 1);
  EXPECT_EQ(events.back().step, 8);  // second flap recovers at step 3+5
}

TEST(FaultPlanTest, RandomPlansAreDeterministicPerSeed) {
  Topology topo(2, 8, Wrap::kTorus);
  FaultSpec spec;
  spec.link_rate = 0.05;
  spec.node_rate = 0.02;
  spec.flap_rate = 0.05;
  FaultPlan a = FaultPlan::Random(topo, spec, 42);
  FaultPlan b = FaultPlan::Random(topo, spec, 42);
  EXPECT_EQ(a.dead_mask(), b.dead_mask());
  EXPECT_EQ(a.dead_link_count(), b.dead_link_count());
  EXPECT_EQ(a.dead_node_count(), b.dead_node_count());
  ASSERT_EQ(a.flap_count(), b.flap_count());
  for (std::size_t i = 0; i < a.flaps().size(); ++i) {
    EXPECT_EQ(a.flaps()[i].link, b.flaps()[i].link);
    EXPECT_EQ(a.flaps()[i].start, b.flaps()[i].start);
    EXPECT_EQ(a.flaps()[i].duration, b.flaps()[i].duration);
  }
  FaultPlan c = FaultPlan::Random(topo, spec, 43);
  EXPECT_NE(a.dead_mask(), c.dead_mask());
  // Something actually got sampled at these rates on 64 processors.
  EXPECT_GT(a.dead_link_count(), 0);
  EXPECT_GT(a.flap_count(), 0u);
}

// ---------------------------------------------------------------------------
// Engine integration: fault honoring and detours.

TEST(FaultRoutingTest, EmptyPlanMatchesFaultFreeRunExactly) {
  // Acceptance criterion: a plan with rate 0 must leave results
  // byte-identical to a run with no plan at all.
  Topology topo(2, 8, Wrap::kMesh);
  FaultPlan plan = FaultPlan::Random(topo, FaultSpec{}, 7);
  ASSERT_TRUE(plan.empty());
  Rng rng(11);
  const std::vector<std::int64_t> perm = rng.Permutation(topo.size());

  auto run = [&](const FaultPlan* faults) {
    EngineOptions opts;
    opts.faults = faults;
    opts.invariants = InvariantMode::kOn;
    Engine engine(topo, opts);
    Network net(topo);
    for (ProcId p = 0; p < topo.size(); ++p) {
      net.Add(p, MakePacket(p, static_cast<ProcId>(perm[static_cast<std::size_t>(p)])));
    }
    RouteResult r = engine.Route(net);
    return std::make_tuple(r.steps, r.moves, r.detours, r.max_queue,
                           Placement(net));
  };
  const auto bare = run(nullptr);
  const auto empty = run(&plan);
  EXPECT_EQ(bare, empty);
  EXPECT_EQ(std::get<2>(bare), 0);  // no detours without faults
}

TEST(FaultRoutingTest, TorusRingCommitsToTheLongWayAround) {
  // Packet 0 -> 1 on an 8-ring with the (0 -> 1) link dead. The only route
  // is the long way: 0 -> 7 -> 6 -> ... -> 1, seven hops. Without wrong-way
  // commitment the packet would bounce 0 <-> 7 forever, since 7's
  // shortest-way hop points straight back at the dead link.
  Topology topo(1, 8, Wrap::kTorus);
  FaultPlan plan(topo);
  plan.KillLink(0, 0, 1);
  ASSERT_TRUE(plan.Connected());
  EngineOptions opts;
  opts.faults = &plan;
  opts.invariants = InvariantMode::kOn;
  Engine engine(topo, opts);
  Network net(topo);
  net.Add(0, MakePacket(0, 1));
  RouteResult r = engine.Route(net);
  EXPECT_TRUE(r.completed);
  EXPECT_EQ(r.steps, 7);
  EXPECT_GT(r.detours, 0);
  EXPECT_EQ(net.At(1).size(), 1u);
}

TEST(FaultRoutingTest, MeshDetourSidestepsThroughCorrectedDimension) {
  // (0,0) -> (3,0) with the (1,0) -> (2,0) link dead: the packet sidesteps
  // to row 1, passes the wall, and drops back — two extra hops.
  Topology topo(2, 4, Wrap::kMesh);
  Point block{};
  block[0] = 1;
  FaultPlan plan(topo);
  plan.KillLink(topo.Id(block), 0, 1);
  Point dst{};
  dst[0] = 3;
  EngineOptions opts;
  opts.faults = &plan;
  opts.invariants = InvariantMode::kOn;
  Engine engine(topo, opts);
  Network net(topo);
  net.Add(0, MakePacket(0, topo.Id(dst)));
  RouteResult r = engine.Route(net);
  EXPECT_TRUE(r.completed);
  EXPECT_EQ(r.steps, 5);  // distance 3 + sidestep out and back
  EXPECT_EQ(r.detours, 1);
}

TEST(FaultRoutingTest, PacketWaitsOutAFlap) {
  // The only link out of 0 flaps dead for steps 1..5; the packet cannot
  // detour (1-D mesh) and crosses at step 6.
  Topology topo(1, 2, Wrap::kMesh);
  FaultPlan plan(topo);
  plan.AddFlap(0, 0, 1, 1, 5);
  EngineOptions opts;
  opts.faults = &plan;
  opts.invariants = InvariantMode::kOn;
  Engine engine(topo, opts);
  Network net(topo);
  net.Add(0, MakePacket(0, 1));
  RouteResult r = engine.Route(net);
  EXPECT_TRUE(r.completed);
  EXPECT_EQ(r.steps, 6);
  EXPECT_EQ(r.detours, 0);
}

TEST(FaultRoutingTest, RoutesAmongAliveNodesAroundADeadOne) {
  Topology topo(2, 4, Wrap::kMesh);
  Point c{};
  c[0] = 1;
  c[1] = 1;
  FaultPlan plan(topo);
  plan.KillNode(topo.Id(c));
  ASSERT_TRUE(plan.Connected());
  EngineOptions opts;
  opts.faults = &plan;
  opts.invariants = InvariantMode::kOn;
  Engine engine(topo, opts);
  Network net(topo);
  // A cyclic shift over the alive processors.
  const std::vector<ProcId> alive = plan.AliveNodes();
  for (std::size_t i = 0; i < alive.size(); ++i) {
    net.Add(alive[i], MakePacket(static_cast<std::int64_t>(i),
                                 alive[(i + 1) % alive.size()]));
  }
  RouteResult r = engine.Route(net);
  EXPECT_TRUE(r.completed);
  EXPECT_EQ(net.TotalPackets(), static_cast<std::int64_t>(alive.size()));
}

TEST(FaultRoutingTest, EngineRejectsPlanForDifferentTopology) {
  Topology big(2, 8, Wrap::kMesh);
  Topology small(2, 4, Wrap::kMesh);
  FaultPlan plan(small);
  plan.KillLink(0, 0, 1);
  EngineOptions opts;
  opts.faults = &plan;
  EXPECT_THROW(Engine(big, opts), std::invalid_argument);
}

// ---------------------------------------------------------------------------
// Stall watchdog and structured reports.

TEST(WatchdogTest, FiresOnDeadlockInsteadOfBurningToStepCap) {
  // Node 1 has every outgoing link dead; a packet stranded there can never
  // bid, so nothing ever moves. The watchdog must abort after its window,
  // not after the (huge) step cap.
  Topology topo(1, 4, Wrap::kMesh);
  FaultPlan plan(topo);
  plan.KillLink(1, 0, 0);
  plan.KillLink(1, 0, 1);
  EngineOptions opts;
  opts.faults = &plan;
  opts.step_cap = 1000000;
  opts.stall_window = 10;
  opts.invariants = InvariantMode::kOn;
  Engine engine(topo, opts);
  Network net(topo);
  net.Add(1, MakePacket(77, 3));
  RouteResult r = engine.Route(net);
  EXPECT_FALSE(r.completed);
  EXPECT_EQ(r.steps, 10);  // window, not cap
  ASSERT_NE(r.stall_report, nullptr);
  EXPECT_EQ(r.stall_report->reason, StallReason::kWatchdog);
  EXPECT_EQ(r.stall_report->stuck_packets, 1);
  EXPECT_GE(r.stall_report->no_progress_steps, 10);
  ASSERT_EQ(r.stall_report->sample.size(), 1u);
  const StallReport::StuckPacket& stuck = r.stall_report->sample[0];
  EXPECT_EQ(stuck.id, 77);
  EXPECT_EQ(stuck.at, 1);
  EXPECT_EQ(stuck.dest, 3);
  EXPECT_EQ(stuck.remaining, 2);
  EXPECT_EQ(stuck.want_dim, 0);
  EXPECT_EQ(stuck.want_dir, 1);
  EXPECT_TRUE(stuck.link_dead);
  EXPECT_EQ(r.stall_report->blocked_links.size(), 1u);
  // The report survives serialization.
  EXPECT_NE(r.stall_report->ToString().find("watchdog"), std::string::npos);
}

TEST(WatchdogTest, StepCapHitProducesTheSameStructuredReport) {
  // Same deadlock, watchdog disabled: the run burns to the cap and the
  // diagnostic arrives with reason kStepCap instead.
  Topology topo(1, 4, Wrap::kMesh);
  FaultPlan plan(topo);
  plan.KillLink(1, 0, 0);
  plan.KillLink(1, 0, 1);
  EngineOptions opts;
  opts.faults = &plan;
  opts.step_cap = 30;
  opts.stall_window = -1;
  opts.invariants = InvariantMode::kOn;
  Engine engine(topo, opts);
  Network net(topo);
  net.Add(1, MakePacket(0, 3));
  RouteResult r = engine.Route(net);
  EXPECT_FALSE(r.completed);
  EXPECT_EQ(r.steps, 30);
  ASSERT_NE(r.stall_report, nullptr);
  EXPECT_EQ(r.stall_report->reason, StallReason::kStepCap);
  EXPECT_EQ(r.stall_report->stuck_packets, 1);
}

TEST(WatchdogTest, DoesNotFireWhileAFlapIsPending) {
  // A packet waiting out a 20-step flap makes no progress, but the flap's
  // edges count as activity and the auto window is sized past the longest
  // flap — the run must complete, not abort.
  Topology topo(1, 2, Wrap::kMesh);
  FaultPlan plan(topo);
  plan.AddFlap(0, 0, 1, 1, 20);
  EngineOptions opts;
  opts.faults = &plan;
  opts.invariants = InvariantMode::kOn;
  Engine engine(topo, opts);
  Network net(topo);
  net.Add(0, MakePacket(0, 1));
  RouteResult r = engine.Route(net);
  EXPECT_TRUE(r.completed);
  EXPECT_EQ(r.steps, 21);
  EXPECT_EQ(r.stall_report, nullptr);
}

// ---------------------------------------------------------------------------
// Invariant checker.

TEST(InvariantTest, CheckerCatchesConservationViolation) {
  Topology topo(1, 4, Wrap::kMesh);
  Network net(topo);
  net.Add(0, MakePacket(0, 3));
  net.Add(1, MakePacket(1, 3));
  InvariantChecker checker(topo);
  checker.BeginRun(net);
  checker.CheckStep(net, 1);  // untouched network: fine
  net.At(1).clear();          // a packet vanishes
  EXPECT_THROW(checker.CheckStep(net, 1), std::logic_error);
}

TEST(InvariantTest, CheckerCatchesLeftoverScratchFlags) {
  Topology topo(1, 4, Wrap::kMesh);
  Network net(topo);
  net.Add(0, MakePacket(0, 3));
  InvariantChecker checker(topo);
  checker.BeginRun(net);
  net.At(0)[0].flags |= Packet::kMoving;  // delivery must clear this
  EXPECT_THROW(checker.CheckStep(net, 1), std::logic_error);
}

TEST(InvariantTest, FullRunPassesUnderChecking) {
  Topology topo(2, 6, Wrap::kTorus);
  FaultPlan plan = FaultPlan::Random(topo, FaultSpec{0.03, 0.0, 0.03}, 3);
  EngineOptions opts;
  opts.faults = &plan;
  opts.invariants = InvariantMode::kOn;
  Engine engine(topo, opts);
  Network net(topo);
  Rng rng(9);
  const std::vector<std::int64_t> perm = rng.Permutation(topo.size());
  for (ProcId p = 0; p < topo.size(); ++p) {
    net.Add(p, MakePacket(p, static_cast<ProcId>(perm[static_cast<std::size_t>(p)])));
  }
  EXPECT_NO_THROW(engine.Route(net));
}

// ---------------------------------------------------------------------------
// Class reassignment around permanent damage.

TEST(PolicyTest, ReassignClassesSkipsDeadFirstHops) {
  Topology topo(2, 4, Wrap::kMesh);
  Point dst{};
  dst[0] = 2;
  dst[1] = 2;
  FaultPlan plan(topo);
  plan.KillLink(0, 0, 1);  // class 0's first hop out of processor 0
  Network net(topo);
  net.Add(0, MakePacket(0, topo.Id(dst), /*klass=*/0));
  EXPECT_EQ(ReassignClassesForFaults(net, plan), 1);
  EXPECT_EQ(net.At(0)[0].klass, 1);  // class 1 starts along dimension 1
  // Idempotent: the new class's first hop is alive.
  EXPECT_EQ(ReassignClassesForFaults(net, plan), 0);
  // And a no-op on an empty plan.
  FaultPlan clean(topo);
  EXPECT_EQ(ReassignClassesForFaults(net, clean), 0);
}

// ---------------------------------------------------------------------------
// Chaos: randomized plans, determinism, conservation, completion.

TEST(ChaosTest, DeterministicAcrossThreadCounts) {
  Topology topo(2, 8, Wrap::kTorus);
  FaultSpec spec;
  spec.link_rate = 0.05;
  spec.flap_rate = 0.03;
  spec.flap_start_max = 64;
  spec.flap_duration_max = 16;
  for (std::uint64_t seed : {1ull, 2ull, 3ull}) {
    FaultPlan plan = FaultPlan::Random(topo, spec, seed);
    auto run = [&](unsigned workers) {
      ThreadPool pool(workers);
      EngineOptions opts;
      opts.faults = &plan;
      opts.pool = &pool;
      opts.invariants = InvariantMode::kOn;
      Engine engine(topo, opts);
      Network net(topo);
      Rng rng(seed + 100);
      const std::vector<std::int64_t> perm = rng.Permutation(topo.size());
      for (ProcId p = 0; p < topo.size(); ++p) {
        net.Add(p, MakePacket(p, static_cast<ProcId>(perm[static_cast<std::size_t>(p)])));
      }
      RouteResult r = engine.Route(net);
      return std::make_tuple(r.steps, r.moves, r.detours, r.completed,
                             Placement(net));
    };
    const auto serial = run(0);
    const auto threaded = run(4);
    EXPECT_EQ(serial, threaded) << "seed " << seed;
  }
}

TEST(ChaosTest, CompletesWheneverTheFaultedNetworkStaysConnected) {
  Topology topo(2, 8, Wrap::kTorus);
  FaultSpec spec;
  spec.link_rate = 0.06;
  spec.flap_rate = 0.02;
  spec.flap_start_max = 32;
  spec.flap_duration_max = 16;
  int connected_seeds = 0;
  for (std::uint64_t seed = 1; seed <= 12; ++seed) {
    FaultPlan plan = FaultPlan::Random(topo, spec, seed);
    if (!plan.Connected()) continue;
    ++connected_seeds;
    EngineOptions opts;
    opts.faults = &plan;
    opts.invariants = InvariantMode::kOn;
    Engine engine(topo, opts);
    Network net(topo);
    Rng rng(seed);
    const std::vector<std::int64_t> perm = rng.Permutation(topo.size());
    for (ProcId p = 0; p < topo.size(); ++p) {
      net.Add(p, MakePacket(p, static_cast<ProcId>(perm[static_cast<std::size_t>(p)])));
    }
    const std::int64_t before = net.TotalPackets();
    RouteResult r = engine.Route(net);
    EXPECT_TRUE(r.completed)
        << "seed " << seed << ": " << r.ToString()
        << (r.stall_report != nullptr ? "\n" + r.stall_report->ToString() : "");
    EXPECT_EQ(net.TotalPackets(), before) << "seed " << seed;
    // Every packet is at its destination with a stamped arrival.
    net.ForEach([&](ProcId p, const Packet& pkt) {
      EXPECT_EQ(pkt.dest, p);
      EXPECT_GE(pkt.arrived, 0);
    });
  }
  EXPECT_GE(connected_seeds, 3) << "fault rate too aggressive for the test";
}

TEST(ChaosTest, DeadNodeWorkloadsCompleteAfterErasingTheirPackets) {
  // With node faults the workload itself must avoid dead processors:
  // EraseIf drops packets parked on (or destined for) them, and the rest
  // still routes.
  Topology topo(2, 8, Wrap::kTorus);
  FaultSpec spec;
  spec.link_rate = 0.02;
  spec.node_rate = 0.03;
  int connected_seeds = 0;
  for (std::uint64_t seed = 1; seed <= 12; ++seed) {
    FaultPlan plan = FaultPlan::Random(topo, spec, seed);
    if (!plan.Connected() || plan.dead_node_count() == 0) continue;
    ++connected_seeds;
    EngineOptions opts;
    opts.faults = &plan;
    opts.invariants = InvariantMode::kOn;
    Engine engine(topo, opts);
    Network net(topo);
    Rng rng(seed * 17);
    const std::vector<std::int64_t> perm = rng.Permutation(topo.size());
    for (ProcId p = 0; p < topo.size(); ++p) {
      net.Add(p, MakePacket(p, static_cast<ProcId>(perm[static_cast<std::size_t>(p)])));
    }
    const std::int64_t erased = net.EraseIf([&](ProcId p, const Packet& pkt) {
      return plan.NodeDead(p) || plan.NodeDead(pkt.dest);
    });
    EXPECT_GT(erased, 0) << "seed " << seed;
    RouteResult r = engine.Route(net);
    EXPECT_TRUE(r.completed)
        << "seed " << seed << ": " << r.ToString()
        << (r.stall_report != nullptr ? "\n" + r.stall_report->ToString() : "");
  }
  EXPECT_GE(connected_seeds, 2) << "node rate too aggressive for the test";
}

}  // namespace
}  // namespace mdmesh
