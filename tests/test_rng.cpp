#include "util/rng.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <vector>

namespace mdmesh {
namespace {

TEST(RngTest, Deterministic) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.Next() == b.Next()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(RngTest, BelowStaysInRange) {
  Rng rng(7);
  for (std::uint64_t bound : {1ull, 2ull, 3ull, 10ull, 1000ull, 1ull << 40}) {
    for (int i = 0; i < 200; ++i) {
      EXPECT_LT(rng.Below(bound), bound);
    }
  }
}

TEST(RngTest, BelowOneAlwaysZero) {
  Rng rng(9);
  for (int i = 0; i < 50; ++i) EXPECT_EQ(rng.Below(1), 0u);
}

TEST(RngTest, RangeInclusive) {
  Rng rng(11);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    auto v = rng.Range(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 7u);  // all 7 values hit in 1000 draws
}

TEST(RngTest, UnitInHalfOpenInterval) {
  Rng rng(13);
  for (int i = 0; i < 1000; ++i) {
    double u = rng.Unit();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(RngTest, UnitRoughlyUniform) {
  Rng rng(17);
  double sum = 0.0;
  const int trials = 20000;
  for (int i = 0; i < trials; ++i) sum += rng.Unit();
  EXPECT_NEAR(sum / trials, 0.5, 0.02);
}

TEST(RngTest, SplitStreamsIndependentAndStable) {
  Rng parent(99);
  Rng c1 = parent.Split(1);
  Rng c2 = parent.Split(2);
  Rng c1_again = parent.Split(1);
  EXPECT_EQ(c1.Next(), c1_again.Next());
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (c1.Next() == c2.Next()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(RngTest, SplitDoesNotAdvanceParent) {
  Rng a(5);
  Rng b(5);
  (void)a.Split(123);
  EXPECT_EQ(a.Next(), b.Next());
}

TEST(RngTest, PermutationIsBijective) {
  Rng rng(21);
  for (std::int64_t size : {0ll, 1ll, 2ll, 17ll, 256ll}) {
    auto p = rng.Permutation(size);
    ASSERT_EQ(p.size(), static_cast<std::size_t>(size));
    std::vector<std::int64_t> sorted = p;
    std::sort(sorted.begin(), sorted.end());
    for (std::int64_t i = 0; i < size; ++i) EXPECT_EQ(sorted[static_cast<std::size_t>(i)], i);
  }
}

TEST(RngTest, PermutationIsNotIdentityForLargeSizes) {
  Rng rng(23);
  auto p = rng.Permutation(1000);
  int fixed = 0;
  for (std::int64_t i = 0; i < 1000; ++i) {
    if (p[static_cast<std::size_t>(i)] == i) ++fixed;
  }
  EXPECT_LT(fixed, 20);  // E[fixed] = 1
}

TEST(RngTest, ShuffleDeterministicGivenSeed) {
  std::vector<int> v1{1, 2, 3, 4, 5, 6, 7, 8};
  std::vector<int> v2 = v1;
  Rng a(31), b(31);
  a.Shuffle(v1);
  b.Shuffle(v2);
  EXPECT_EQ(v1, v2);
}

TEST(RngTest, StateRestoreReplaysIdenticalSequence) {
  Rng rng(1234);
  for (int i = 0; i < 57; ++i) rng.Next();  // advance to a mid-stream point
  const auto saved = rng.State();
  std::vector<std::uint64_t> expected;
  for (int i = 0; i < 100; ++i) expected.push_back(rng.Next());

  Rng restored(999);  // deliberately different seed — Restore must win
  restored.Restore(saved);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(restored.Next(), expected[static_cast<std::size_t>(i)]);
}

TEST(RngTest, StateRestoreRoundTripsMixedDraws) {
  // Chance/Below/Range consume different amounts of stream; the round trip
  // must hold across them, not just raw Next().
  Rng rng(77);
  rng.Chance(0.5);
  rng.Below(1000);
  const auto saved = rng.State();
  const std::uint64_t a1 = rng.Below(1u << 20);
  const std::int64_t a2 = rng.Range(-50, 50);
  const bool a3 = rng.Chance(0.25);

  Rng other(1);
  other.Restore(saved);
  EXPECT_EQ(other.Below(1u << 20), a1);
  EXPECT_EQ(other.Range(-50, 50), a2);
  EXPECT_EQ(other.Chance(0.25), a3);
}

TEST(RngTest, RestoredSplitChildrenAreIndependent) {
  // Split() derives the child from the parent's state only, so restoring
  // the parent and splitting again yields the same child stream.
  Rng parent(42);
  parent.Next();
  const auto saved = parent.State();
  Rng child1 = parent.Split(3);
  std::vector<std::uint64_t> child_seq;
  for (int i = 0; i < 20; ++i) child_seq.push_back(child1.Next());

  Rng parent2(0);
  parent2.Restore(saved);
  Rng child2 = parent2.Split(3);
  for (int i = 0; i < 20; ++i) EXPECT_EQ(child2.Next(), child_seq[static_cast<std::size_t>(i)]);
  // And advancing the restored child does not disturb the parent's stream.
  EXPECT_EQ(parent.Next(), parent2.Next());
}

TEST(RngTest, RestoreAllZeroStateIsRepaired) {
  // The all-zero state is xoshiro's one forbidden fixed point; Restore must
  // substitute a valid state rather than produce a constant-zero stream.
  Rng rng(5);
  rng.Restore({0, 0, 0, 0});
  bool nonzero = false;
  for (int i = 0; i < 10; ++i) nonzero |= rng.Next() != 0;
  EXPECT_TRUE(nonzero);
}

}  // namespace
}  // namespace mdmesh
