// Dynamic workload subsystem: traffic patterns, the open-loop injection
// driver, and the saturation search. The load-bearing contract is
// determinism — an injector-driven run must produce identical results for
// any thread count and either engine traversal mode — plus conservation
// (drained runs deliver exactly what was offered) and the latency lower
// bound (no packet beats its source-destination distance).
#include <gtest/gtest.h>

#include <set>
#include <utility>
#include <vector>

#include "net/engine.h"
#include "net/network.h"
#include "obs/critical_path.h"
#include "obs/flight_recorder.h"
#include "obs/journey.h"
#include "obs/probe.h"
#include "obs/publisher.h"
#include "obs/registry.h"
#include "obs/trace.h"
#include "routing/permutations.h"
#include "util/thread_pool.h"
#include "workload/driver.h"
#include "workload/patterns.h"

namespace mdmesh {
namespace {

// ---------------------------------------------------------------------------
// Patterns

TEST(Patterns, StructuredKindsArePermutations) {
  for (const auto& spec :
       {std::pair<int, int>{2, 8}, {3, 4}, {2, 5}, {3, 7}, {4, 3}}) {
    Topology topo(spec.first, spec.second, Wrap::kMesh);
    for (PatternKind kind :
         {PatternKind::kBitReversal, PatternKind::kShuffle,
          PatternKind::kButterfly, PatternKind::kDiagonal,
          PatternKind::kTranspose, PatternKind::kReversal}) {
      TrafficPattern pat(topo, kind, 1);
      ASSERT_TRUE(pat.fixed());
      EXPECT_TRUE(IsPermutation(pat.map()))
          << PatternName(kind) << " on d=" << spec.first
          << " n=" << spec.second;
    }
  }
}

TEST(Patterns, BitReversalIsInvolutionForAllSides) {
  for (int n : {4, 5, 6, 7, 8, 9, 16}) {
    Topology topo(2, n, Wrap::kMesh);
    const std::vector<ProcId> rev = BitReversalPermutation(topo);
    ASSERT_TRUE(IsPermutation(rev)) << "n=" << n;
    for (ProcId p = 0; p < topo.size(); ++p) {
      EXPECT_EQ(rev[static_cast<std::size_t>(rev[static_cast<std::size_t>(p)])],
                p)
          << "n=" << n << " p=" << p;
    }
  }
}

TEST(Patterns, BitReversalMatchesClassicOnPowerOfTwoSide) {
  // n = 8: coordinate bits fully reverse (1 -> 4, 3 -> 6, ...).
  Topology topo(1, 8, Wrap::kMesh);
  const std::vector<ProcId> rev = BitReversalPermutation(topo);
  const std::vector<ProcId> want = {0, 4, 2, 6, 1, 5, 3, 7};
  EXPECT_EQ(rev, want);
}

TEST(Patterns, ShuffleRotatesCoordinates) {
  Topology topo(3, 4, Wrap::kMesh);
  TrafficPattern pat(topo, PatternKind::kShuffle, 1);
  Rng rng(1);
  Point c{};
  c[0] = 1;
  c[1] = 2;
  c[2] = 3;
  Point want{};
  want[0] = 2;
  want[1] = 3;
  want[2] = 1;
  EXPECT_EQ(pat.Draw(topo.Id(c), rng), topo.Id(want));
}

TEST(Patterns, HotSpotRespectsSkewBounds) {
  Topology topo(2, 16, Wrap::kMesh);
  PatternOptions opts;
  opts.hot_count = 2;
  opts.hot_skew = 1.0;  // every packet targets the hot set
  TrafficPattern pat(topo, PatternKind::kHotSpot, 7, opts);
  EXPECT_FALSE(pat.fixed());
  Rng rng(3);
  std::set<ProcId> seen;
  for (int i = 0; i < 256; ++i) seen.insert(pat.Draw(0, rng));
  EXPECT_LE(seen.size(), 2u);
}

TEST(Patterns, HotSpotIsSeedDeterministic) {
  Topology topo(2, 16, Wrap::kMesh);
  TrafficPattern a(topo, PatternKind::kHotSpot, 42);
  TrafficPattern b(topo, PatternKind::kHotSpot, 42);
  Rng ra(5), rb(5);
  for (int i = 0; i < 128; ++i) {
    EXPECT_EQ(a.Draw(i % topo.size(), ra), b.Draw(i % topo.size(), rb));
  }
}

TEST(Patterns, ParseRoundTripsEveryName) {
  for (PatternKind kind : AllPatterns()) {
    PatternKind parsed{};
    ASSERT_TRUE(ParsePattern(PatternName(kind), &parsed));
    EXPECT_EQ(parsed, kind);
  }
  PatternKind dummy{};
  EXPECT_FALSE(ParsePattern("nonsense", &dummy));
}

TEST(Patterns, HRelationDegreesAreExact) {
  Topology topo(2, 6, Wrap::kMesh);
  Rng rng(11);
  const auto rel = HRelation(topo, 3, rng);
  ASSERT_EQ(rel.size(), static_cast<std::size_t>(3 * topo.size()));
  std::vector<int> out(static_cast<std::size_t>(topo.size()), 0);
  std::vector<int> in(static_cast<std::size_t>(topo.size()), 0);
  for (const auto& [src, dst] : rel) {
    ++out[static_cast<std::size_t>(src)];
    ++in[static_cast<std::size_t>(dst)];
  }
  for (ProcId p = 0; p < topo.size(); ++p) {
    EXPECT_EQ(out[static_cast<std::size_t>(p)], 3);
    EXPECT_EQ(in[static_cast<std::size_t>(p)], 3);
  }
}

TEST(Patterns, LKRelationBoundsDegrees) {
  Topology topo(2, 5, Wrap::kMesh);
  Rng rng(13);
  const std::int64_t l = 2, k = 4;
  const auto rel = LKRelation(topo, l, k, rng);
  ASSERT_EQ(rel.size(), static_cast<std::size_t>(topo.size() * std::min(l, k)));
  std::vector<int> out(static_cast<std::size_t>(topo.size()), 0);
  std::vector<int> in(static_cast<std::size_t>(topo.size()), 0);
  for (const auto& [src, dst] : rel) {
    ++out[static_cast<std::size_t>(src)];
    ++in[static_cast<std::size_t>(dst)];
    EXPECT_LE(out[static_cast<std::size_t>(src)], l);
    EXPECT_LE(in[static_cast<std::size_t>(dst)], k);
  }
}

// ---------------------------------------------------------------------------
// Open-loop driver

/// A full fingerprint of one run: every delivery (packet id, injection
/// step, delivery step) in callback order, plus the aggregate counters.
struct RunTrace {
  std::vector<std::tuple<std::int64_t, std::int64_t, std::int32_t>> deliveries;
  WorkloadResult result;

  bool operator==(const RunTrace& other) const {
    return deliveries == other.deliveries &&
           result.offered == other.result.offered &&
           result.delivered == other.result.delivered &&
           result.route.steps == other.result.route.steps &&
           result.route.moves == other.result.route.moves &&
           result.latency_count == other.result.latency_count &&
           result.latency_p99 == other.result.latency_p99;
  }
};

/// Records every OnDeliver on top of the standard driver.
class RecordingInjector final : public StepInjector {
 public:
  RecordingInjector(OpenLoopInjector* inner, RunTrace* trace)
      : inner_(inner), trace_(trace) {}

  InjectAction Inject(std::int64_t step,
                      std::vector<std::pair<ProcId, Packet>>* out) override {
    return inner_->Inject(step, out);
  }
  void OnDeliver(const Packet& pkt, std::int64_t step) override {
    trace_->deliveries.emplace_back(pkt.id, pkt.tag, pkt.arrived);
    inner_->OnDeliver(pkt, step);
  }

 private:
  OpenLoopInjector* inner_;
  RunTrace* trace_;
};

RunTrace RunTraced(const Topology& topo, const TrafficPattern& pattern,
                   const DriverOptions& dopts, SparseMode mode,
                   ThreadPool* pool) {
  RunTrace trace;
  OpenLoopInjector inner(topo, pattern, dopts);
  RecordingInjector rec(&inner, &trace);
  EngineOptions eopts;
  eopts.sparse = mode;
  eopts.pool = pool;
  eopts.injector = &rec;
  Engine engine(topo, eopts);
  Network net(topo);
  trace.result.route = engine.Route(net);
  trace.result.offered = inner.offered();
  trace.result.delivered = inner.delivered();
  trace.result.latency_count = inner.latency().count();
  trace.result.latency_p99 = inner.latency().Quantile(0.99);
  return trace;
}

TEST(OpenLoop, DeterministicAcrossThreadsAndModes) {
  Topology topo(3, 6, Wrap::kMesh);
  TrafficPattern pat(topo, PatternKind::kUniform, 21);
  DriverOptions dopts;
  dopts.rate = 0.08;
  dopts.warmup_steps = 20;
  dopts.measure_steps = 60;
  dopts.drain = true;
  dopts.seed = 99;

  ThreadPool serial(1);
  ThreadPool four(4);
  const RunTrace base =
      RunTraced(topo, pat, dopts, SparseMode::kNever, &serial);
  ASSERT_GT(base.result.offered, 0);
  EXPECT_EQ(base.result.offered, base.result.delivered);

  for (SparseMode mode :
       {SparseMode::kNever, SparseMode::kAlways, SparseMode::kAuto}) {
    for (ThreadPool* pool : {&serial, &four}) {
      const RunTrace other = RunTraced(topo, pat, dopts, mode, pool);
      EXPECT_TRUE(base == other)
          << "mode=" << static_cast<int>(mode)
          << " workers=" << pool->workers();
    }
  }
}

// The zero-cost observability contract: attaching every timeline sink at
// once — congestion probe, metrics registry, thread-pool activity log —
// must leave the delivery trace byte-identical to the bare run.
TEST(OpenLoop, ObservabilitySinksDoNotPerturbDeliveries) {
  Topology topo(3, 6, Wrap::kMesh);
  TrafficPattern pat(topo, PatternKind::kTranspose, 21);
  DriverOptions dopts;
  dopts.rate = 0.08;
  dopts.warmup_steps = 20;
  dopts.measure_steps = 60;
  dopts.drain = true;
  dopts.seed = 7;

  ThreadPool pool(2);
  RunTrace bare;
  {
    OpenLoopInjector inner(topo, pat, dopts);
    RecordingInjector rec(&inner, &bare);
    EngineOptions eopts;
    eopts.pool = &pool;
    eopts.injector = &rec;
    Engine engine(topo, eopts);
    Network net(topo);
    bare.result.route = engine.Route(net);
    bare.result.offered = inner.offered();
    bare.result.delivered = inner.delivered();
    bare.result.latency_count = inner.latency().count();
    bare.result.latency_p99 = inner.latency().Quantile(0.99);
  }
  ASSERT_GT(bare.result.delivered, 0);

  RunTrace instrumented;
  CongestionTrace probe;
  MetricsRegistry metrics;
  ThreadPoolActivity activity;
  FlightRecorder recorder(256);
  MetricsPublisher publisher;
  JourneyTracer::Options jopts;
  jopts.sample_rate = 1.0;
  JourneyTracer journeys(jopts);
  TraceContext trace;
  const bool perf_on = trace.EnablePerfCounters();
  ProgressMeter meter(/*step_cap=*/0, /*interval_ms=*/1, /*force=*/false);
  {
    OpenLoopInjector inner(topo, pat, dopts);
    RecordingInjector rec(&inner, &instrumented);
    EngineOptions eopts;
    eopts.pool = &pool;
    eopts.injector = &rec;
    eopts.probe = &probe;
    eopts.metrics = &metrics;
    eopts.recorder = &recorder;
    eopts.journeys = &journeys;
    eopts.observer = meter.Observer();
    pool.set_activity(&activity);
    // The publisher thread snapshots the registry concurrently with the
    // route, exactly as a live `--metrics-port` run would.
    MetricsPublisher::Options popts;
    popts.registry = &metrics;
    popts.port = 0;
    popts.interval_ms = 1;
    ASSERT_TRUE(publisher.Start(popts));
    Engine engine(topo, eopts);
    Network net(topo);
    Span route_span = trace.Open("route");
    instrumented.result.route = engine.Route(net);
    route_span.Close();
    publisher.Stop();
    pool.set_activity(nullptr);
    instrumented.result.offered = inner.offered();
    instrumented.result.delivered = inner.delivered();
    instrumented.result.latency_count = inner.latency().count();
    instrumented.result.latency_p99 = inner.latency().Quantile(0.99);
  }

  EXPECT_TRUE(bare == instrumented);
  // ...and the sinks actually observed the run.
  EXPECT_FALSE(probe.samples().empty());
  EXPECT_EQ(metrics.counter("engine.routes").Total(), 1);
  EXPECT_EQ(metrics.counter("engine.steps").Total(),
            instrumented.result.route.steps);
  EXPECT_EQ(recorder.total_records(), instrumented.result.route.steps);
  EXPECT_EQ(recorder.Last().step, instrumented.result.route.steps);
  ASSERT_NE(instrumented.result.route.journeys, nullptr);
  EXPECT_GT(instrumented.result.route.journeys->traced_packets, 0);
  ASSERT_NE(instrumented.result.route.critical_path, nullptr);
  EXPECT_EQ(instrumented.result.route.critical_path->identity_violations, 0);
  EXPECT_FALSE(publisher.running());
  if (perf_on) {
    EXPECT_TRUE(trace.nodes()[1].perf.any());
  }
  meter.Finish();
}

TEST(OpenLoop, DrainedRunConservesPackets) {
  Topology topo(2, 8, Wrap::kTorus);
  TrafficPattern pat(topo, PatternKind::kHotSpot, 5);
  DriverOptions dopts;
  dopts.rate = 0.05;
  dopts.warmup_steps = 10;
  dopts.measure_steps = 40;
  dopts.drain = true;
  WorkloadResult r = RunOpenLoop(topo, pat, dopts);
  EXPECT_TRUE(r.route.completed);
  EXPECT_EQ(r.offered, r.delivered);
  EXPECT_EQ(r.offered, r.route.packets);
}

TEST(OpenLoop, LatencyNeverBeatsDistance) {
  Topology topo(2, 8, Wrap::kMesh);
  TrafficPattern pat(topo, PatternKind::kUniform, 3);
  DriverOptions dopts;
  dopts.rate = 0.1;
  dopts.warmup_steps = 0;
  dopts.measure_steps = 80;
  dopts.drain = true;

  struct Check final : StepInjector {
    OpenLoopInjector* inner;
    const Topology* topo;
    std::vector<ProcId> src_of;  // id -> source
    InjectAction Inject(std::int64_t step,
                        std::vector<std::pair<ProcId, Packet>>* out) override {
      const InjectAction a = inner->Inject(step, out);
      for (const auto& [src, pkt] : *out) {
        if (static_cast<std::size_t>(pkt.id) >= src_of.size()) {
          src_of.resize(static_cast<std::size_t>(pkt.id) + 1);
        }
        src_of[static_cast<std::size_t>(pkt.id)] = src;
      }
      return a;
    }
    void OnDeliver(const Packet& pkt, std::int64_t step) override {
      const std::int64_t latency =
          static_cast<std::int64_t>(pkt.arrived) - pkt.tag + 1;
      const std::int64_t dist =
          topo->Dist(src_of[static_cast<std::size_t>(pkt.id)], pkt.dest);
      EXPECT_GE(latency, dist) << "packet " << pkt.id;
      EXPECT_EQ(pkt.dist0, dist);
      inner->OnDeliver(pkt, step);
    }
  };

  OpenLoopInjector inner(topo, pat, dopts);
  Check check;
  check.inner = &inner;
  check.topo = &topo;
  EngineOptions eopts;
  eopts.injector = &check;
  Engine engine(topo, eopts);
  Network net(topo);
  RouteResult r = engine.Route(net);
  EXPECT_TRUE(r.completed);
  EXPECT_GT(inner.delivered(), 0);
}

TEST(OpenLoop, FixedHorizonStopsOnSchedule) {
  Topology topo(2, 8, Wrap::kMesh);
  TrafficPattern pat(topo, PatternKind::kUniform, 17);
  DriverOptions dopts;
  dopts.rate = 0.3;
  dopts.warmup_steps = 16;
  dopts.measure_steps = 32;
  dopts.drain = false;
  WorkloadResult r = RunOpenLoop(topo, pat, dopts);
  // kStop ends the run one step past the measurement window.
  EXPECT_EQ(r.route.steps, dopts.warmup_steps + dopts.measure_steps + 1);
  EXPECT_GE(r.backlog_end, 0);
  // A requested stop is not a stall: no report, even with backlog left.
  EXPECT_EQ(r.route.stall_report, nullptr);
}

TEST(OpenLoop, PreloadedPacketsAreDeliveredAndRetired) {
  Topology topo(2, 6, Wrap::kMesh);
  TrafficPattern pat(topo, PatternKind::kUniform, 1);
  DriverOptions dopts;
  dopts.rate = 0.0;  // nothing injected: only the preload drains
  dopts.warmup_steps = 0;
  dopts.measure_steps = 30;
  dopts.drain = true;

  OpenLoopInjector injector(topo, pat, dopts);
  EngineOptions eopts;
  eopts.injector = &injector;
  Engine engine(topo, eopts);
  Network net(topo);
  const std::vector<ProcId> dest = ReversalPermutation(topo);
  for (ProcId p = 0; p < topo.size(); ++p) {
    Packet pkt;
    pkt.id = p;
    pkt.dest = dest[static_cast<std::size_t>(p)];
    net.Add(p, pkt);
  }
  RouteResult r = engine.Route(net);
  EXPECT_TRUE(r.completed);
  EXPECT_EQ(injector.delivered(), topo.size());
  EXPECT_EQ(net.TotalPackets(), 0);  // delivered packets are retired
}

TEST(OpenLoop, ZeroHopPacketsCountWithLatencyZero) {
  Topology topo(2, 4, Wrap::kMesh);
  TrafficPattern pat(topo, PatternKind::kUniform, 1);
  DriverOptions dopts;
  dopts.rate = 0.0;
  dopts.warmup_steps = 0;
  dopts.measure_steps = 4;
  dopts.drain = true;

  struct SelfShot final : StepInjector {
    OpenLoopInjector* inner;
    std::int64_t self_latency = -100;
    InjectAction Inject(std::int64_t step,
                        std::vector<std::pair<ProcId, Packet>>* out) override {
      const InjectAction a = inner->Inject(step, out);
      if (step == 1) {
        Packet pkt;
        pkt.id = 1000;
        pkt.dest = 5;
        out->emplace_back(ProcId{5}, pkt);  // dest == source
      }
      return a;
    }
    void OnDeliver(const Packet& pkt, std::int64_t step) override {
      if (pkt.id == 1000) {
        self_latency = static_cast<std::int64_t>(pkt.arrived) - pkt.tag + 1;
      }
      inner->OnDeliver(pkt, step);
    }
  };

  OpenLoopInjector inner(topo, pat, dopts);
  SelfShot shot;
  shot.inner = &inner;
  EngineOptions eopts;
  eopts.injector = &shot;
  Engine engine(topo, eopts);
  Network net(topo);
  RouteResult r = engine.Route(net);
  EXPECT_TRUE(r.completed);
  EXPECT_EQ(shot.self_latency, 0);
  EXPECT_EQ(r.packets, 1);
}

TEST(OpenLoop, StableAtLowRateUnstableAtSaturation) {
  Topology topo(2, 8, Wrap::kMesh);
  TrafficPattern pat(topo, PatternKind::kUniform, 31);
  DriverOptions low;
  low.rate = 0.02;
  low.warmup_steps = 40;
  low.measure_steps = 160;
  const WorkloadResult stable = RunOpenLoop(topo, pat, low);
  EXPECT_TRUE(stable.stable);

  DriverOptions high = low;
  high.rate = 0.95;  // far past any mesh's per-node service rate
  const WorkloadResult unstable = RunOpenLoop(topo, pat, high);
  EXPECT_FALSE(unstable.stable);
  EXPECT_GT(unstable.backlog_end, unstable.backlog_start);
}

TEST(OpenLoop, SaturationSearchBracketsTheBoundary) {
  Topology topo(2, 8, Wrap::kMesh);
  TrafficPattern pat(topo, PatternKind::kUniform, 31);
  DriverOptions base;
  base.warmup_steps = 40;
  base.measure_steps = 160;
  SaturationOptions sopts;
  sopts.iterations = 5;
  const SaturationResult sat = FindSaturationRate(topo, pat, base, sopts);
  EXPECT_EQ(sat.probes.size(), 5u);
  EXPECT_GT(sat.rate, 0.0);
  EXPECT_LT(sat.rate, 1.0);
  EXPECT_GT(sat.unstable_rate, sat.rate);
  EXPECT_LE(sat.unstable_rate - sat.rate, 1.0 / 32.0 + 1e-9);
}

TEST(OpenLoop, RouteResultSurfacesPeakActiveProcs) {
  Topology topo(2, 8, Wrap::kMesh);
  TrafficPattern pat(topo, PatternKind::kUniform, 9);
  DriverOptions dopts;
  dopts.rate = 0.05;
  dopts.warmup_steps = 8;
  dopts.measure_steps = 32;
  dopts.drain = true;
  EngineOptions eopts;
  eopts.sparse = SparseMode::kAlways;
  WorkloadResult r = RunOpenLoop(topo, pat, dopts, eopts);
  EXPECT_GT(r.route.sparse_steps, 0);
  EXPECT_GE(r.route.peak_active_procs, 1);
  EXPECT_NE(r.route.ToJson().find("\"peak_active_procs\""), std::string::npos);
}

TEST(OpenLoop, WorkloadResultJsonHasSchemaKeys) {
  Topology topo(2, 6, Wrap::kMesh);
  TrafficPattern pat(topo, PatternKind::kHotSpot, 2);
  DriverOptions dopts;
  dopts.rate = 0.1;
  dopts.warmup_steps = 8;
  dopts.measure_steps = 24;
  WorkloadResult r = RunOpenLoop(topo, pat, dopts);
  std::ostringstream os;
  JsonWriter w(os);
  r.WriteJson(w);
  const std::string json = os.str();
  for (const char* key :
       {"\"pattern\"", "\"rate\"", "\"throughput\"", "\"stable\"",
        "\"latency_p50\"", "\"latency_p95\"", "\"latency_p99\"",
        "\"backlog_start\"", "\"backlog_end\"", "\"peak_active_procs\""}) {
    EXPECT_NE(json.find(key), std::string::npos) << key;
  }
}

}  // namespace
}  // namespace mdmesh
