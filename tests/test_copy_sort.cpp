#include "sorting/copy_sort.h"

#include <gtest/gtest.h>

#include "sorting/kk_sort.h"

namespace mdmesh {
namespace {

struct Case {
  int d;
  int n;
  int g;
  InputKind input;
  int max_fixups;
};

class CopySortTest : public ::testing::TestWithParam<Case> {};

TEST_P(CopySortTest, SortsCorrectly) {
  const Case c = GetParam();
  Topology topo(c.d, c.n, Wrap::kMesh);
  BlockGrid grid(topo, c.g);
  Network net(topo);
  FillInput(net, grid, 1, c.input, 53);
  SortOptions opts;
  opts.g = c.g;
  opts.max_fixup_rounds = c.max_fixups;
  SortResult result = RunSort(SortAlgo::kCopy, net, grid, opts);
  EXPECT_TRUE(result.sorted) << result.Summary(topo.Diameter());
  EXPECT_TRUE(result.completed);
}

INSTANTIATE_TEST_SUITE_P(
    Cases, CopySortTest,
    ::testing::Values(Case{2, 8, 2, InputKind::kRandom, 8},
                      Case{2, 16, 2, InputKind::kRandom, 8},
                      Case{2, 16, 4, InputKind::kRandom, 8},
                      Case{2, 16, 2, InputKind::kSortedDesc, 8},
                      Case{2, 16, 2, InputKind::kAllEqual, 8},
                      Case{3, 8, 2, InputKind::kRandom, 8},
                      Case{3, 16, 2, InputKind::kRandom, 8},
                      Case{4, 8, 2, InputKind::kRandom, 8},
                      // the d >= 8 regime of Theorem 3.2, tiny n: the
                      // rank-estimate error spans several blocks, so allow
                      // the fix-up loop to run longer (see DESIGN.md §5)
                      Case{6, 4, 2, InputKind::kRandom, 256}));

TEST(CopySortTest, ExactlyOneSurvivorPerPacket) {
  // Multiset preservation after dedup is implied by sorted=true, but check
  // the count explicitly: no packet may be duplicated or lost.
  Topology topo(2, 16, Wrap::kMesh);
  BlockGrid grid(topo, 2);
  Network net(topo);
  FillInput(net, grid, 1, InputKind::kRandom, 59);
  const std::int64_t before = net.TotalPackets();
  SortOptions opts;
  opts.g = 2;
  SortResult result = RunSort(SortAlgo::kCopy, net, grid, opts);
  ASSERT_TRUE(result.sorted);
  EXPECT_EQ(net.TotalPackets(), before);
}

TEST(CopySortTest, SurvivorPhaseTravelsAtMostHalfDiameterPlusSlack) {
  // Lemma 3.3: after the copy phase nothing is farther than D/2 + o(n) from
  // both replicas, so the survivor routing distance is <= D/2 + O(b).
  Topology topo(2, 32, Wrap::kMesh);
  BlockGrid grid(topo, 4);
  Network net(topo);
  FillInput(net, grid, 1, InputKind::kRandom, 61);
  SortOptions opts;
  opts.g = 4;
  SortResult result = RunSort(SortAlgo::kCopy, net, grid, opts);
  ASSERT_TRUE(result.sorted);
  const PhaseStats* survivors = nullptr;
  for (const auto& phase : result.phases) {
    if (phase.name == "route-survivors") survivors = &phase;
  }
  ASSERT_NE(survivors, nullptr);
  EXPECT_LE(survivors->max_distance,
            topo.Diameter() / 2 + 4 * grid.block_side());
}

TEST(CopySortTest, FasterRoutingThanSimpleSortAtScale) {
  // Theorem 3.2 vs 3.1: 5D/4 vs 3D/2. At d=2/n=32 the ordering already
  // shows (the asymptotic claim needs d >= 8; see bench_copysort for the
  // full sweep).
  Topology topo(2, 32, Wrap::kMesh);
  BlockGrid grid(topo, 4);
  SortOptions opts;
  opts.g = 4;

  Network a(topo);
  FillInput(a, grid, 1, InputKind::kRandom, 67);
  SortResult copy = RunSort(SortAlgo::kCopy, a, grid, opts);

  Network b(topo);
  FillInput(b, grid, 1, InputKind::kRandom, 67);
  SortResult simple = RunSort(SortAlgo::kSimple, b, grid, opts);

  ASSERT_TRUE(copy.sorted);
  ASSERT_TRUE(simple.sorted);
  EXPECT_LE(copy.routing_steps, simple.routing_steps + topo.side());
}

TEST(CopySortTest, RequiresEvenG) {
  Topology topo(2, 9, Wrap::kMesh);
  BlockGrid grid(topo, 3);
  Network net(topo);
  FillInput(net, grid, 1, InputKind::kRandom, 71);
  SortOptions opts;
  opts.g = 3;
  EXPECT_THROW(CopySortRun(net, grid, opts), std::invalid_argument);
}

TEST(CopySortTest, DeterministicGivenSeed) {
  Topology topo(2, 8, Wrap::kMesh);
  BlockGrid grid(topo, 2);
  SortOptions opts;
  opts.g = 2;
  auto run = [&] {
    Network net(topo);
    FillInput(net, grid, 1, InputKind::kRandom, 73);
    return RunSort(SortAlgo::kCopy, net, grid, opts).routing_steps;
  };
  EXPECT_EQ(run(), run());
}


TEST(CopySortTest, RandomizedSpreadKeepsMirrorPairingAndSorts) {
  // The randomized variant (Section 2.1 duality): originals go to RANDOM
  // center positions, copies to the mirrored block at the same offset —
  // the pairing that makes the keep/delete rule communication-free must
  // survive randomization.
  Topology topo(2, 16, Wrap::kMesh);
  BlockGrid grid(topo, 2);
  Network net(topo);
  FillInput(net, grid, 1, InputKind::kRandom, 79);
  const std::int64_t before = net.TotalPackets();
  SortOptions opts;
  opts.g = 2;
  opts.randomized_spread = true;
  SortResult result = RunSort(SortAlgo::kCopy, net, grid, opts);
  EXPECT_TRUE(result.sorted) << result.Summary(topo.Diameter());
  EXPECT_EQ(net.TotalPackets(), before);  // exactly one survivor per pair
}

}  // namespace
}  // namespace mdmesh
