#include "util/math.h"

#include <gtest/gtest.h>

namespace mdmesh {
namespace {

TEST(MathTest, IPowBasics) {
  EXPECT_EQ(IPow(2, 0), 1);
  EXPECT_EQ(IPow(2, 10), 1024);
  EXPECT_EQ(IPow(3, 4), 81);
  EXPECT_EQ(IPow(10, 9), 1000000000LL);
  EXPECT_EQ(IPow(1, 63), 1);
  EXPECT_EQ(IPow(0, 3), 0);
}

TEST(MathTest, CeilDiv) {
  EXPECT_EQ(CeilDiv(0, 4), 0);
  EXPECT_EQ(CeilDiv(1, 4), 1);
  EXPECT_EQ(CeilDiv(4, 4), 1);
  EXPECT_EQ(CeilDiv(5, 4), 2);
  EXPECT_EQ(CeilDiv(8, 4), 2);
}

TEST(MathTest, ModHandlesNegatives) {
  EXPECT_EQ(Mod(5, 3), 2);
  EXPECT_EQ(Mod(-1, 3), 2);
  EXPECT_EQ(Mod(-3, 3), 0);
  EXPECT_EQ(Mod(-7, 3), 2);
  EXPECT_EQ(Mod(0, 7), 0);
}

TEST(MathTest, AbsDiff) {
  EXPECT_EQ(AbsDiff(3, 7), 4);
  EXPECT_EQ(AbsDiff(7, 3), 4);
  EXPECT_EQ(AbsDiff(-2, 2), 4);
  EXPECT_EQ(AbsDiff(5, 5), 0);
}

TEST(MathTest, RingDistShorterWay) {
  EXPECT_EQ(RingDist(0, 1, 8), 1);
  EXPECT_EQ(RingDist(0, 7, 8), 1);
  EXPECT_EQ(RingDist(0, 4, 8), 4);
  EXPECT_EQ(RingDist(2, 6, 8), 4);
  EXPECT_EQ(RingDist(1, 6, 8), 3);
  EXPECT_EQ(RingDist(3, 3, 8), 0);
}

TEST(MathTest, RingDistIsSymmetric) {
  for (int n : {5, 8, 9}) {
    for (int a = 0; a < n; ++a) {
      for (int b = 0; b < n; ++b) {
        EXPECT_EQ(RingDist(a, b, n), RingDist(b, a, n));
        EXPECT_LE(RingDist(a, b, n), n / 2);
      }
    }
  }
}

TEST(MathTest, Log2Floor) {
  EXPECT_EQ(Log2Floor(1), 0);
  EXPECT_EQ(Log2Floor(2), 1);
  EXPECT_EQ(Log2Floor(3), 1);
  EXPECT_EQ(Log2Floor(1024), 10);
  EXPECT_EQ(Log2Floor(1025), 10);
}

}  // namespace
}  // namespace mdmesh
