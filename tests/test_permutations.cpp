#include "routing/permutations.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <tuple>

namespace mdmesh {
namespace {

class PermutationGenTest
    : public ::testing::TestWithParam<std::tuple<int, int, Wrap>> {};

TEST_P(PermutationGenTest, AllGeneratorsProducePermutations) {
  auto [d, n, wrap] = GetParam();
  Topology topo(d, n, wrap);
  Rng rng(3);
  EXPECT_TRUE(IsPermutation(IdentityPermutation(topo)));
  EXPECT_TRUE(IsPermutation(RandomPermutation(topo, rng)));
  EXPECT_TRUE(IsPermutation(ReversalPermutation(topo)));
  EXPECT_TRUE(IsPermutation(TransposePermutation(topo)));
  if (wrap == Wrap::kTorus) {
    EXPECT_TRUE(IsPermutation(AntipodalPermutation(topo)));
  }
}

INSTANTIATE_TEST_SUITE_P(Networks, PermutationGenTest,
                         ::testing::Values(std::tuple{2, 6, Wrap::kMesh},
                                           std::tuple{2, 6, Wrap::kTorus},
                                           std::tuple{3, 4, Wrap::kMesh},
                                           std::tuple{3, 4, Wrap::kTorus},
                                           std::tuple{4, 3, Wrap::kMesh}));

TEST(PermutationsTest, ReversalSendsCornerToCorner) {
  Topology topo(2, 8, Wrap::kMesh);
  auto dest = ReversalPermutation(topo);
  EXPECT_EQ(dest[0], topo.size() - 1);
  EXPECT_EQ(dest[static_cast<std::size_t>(topo.size() - 1)], 0);
  // Every packet travels dist(p, mirror(p)); the corner travels D.
  EXPECT_EQ(topo.Dist(0, dest[0]), topo.Diameter());
}

TEST(PermutationsTest, ReversalIsInvolution) {
  Topology topo(3, 5, Wrap::kMesh);
  auto dest = ReversalPermutation(topo);
  for (ProcId p = 0; p < topo.size(); ++p) {
    EXPECT_EQ(dest[static_cast<std::size_t>(dest[static_cast<std::size_t>(p)])], p);
  }
}

TEST(PermutationsTest, TransposeFixesDiagonal) {
  Topology topo(2, 6, Wrap::kMesh);
  auto dest = TransposePermutation(topo);
  for (int i = 0; i < 6; ++i) {
    Point c{};
    c[0] = i;
    c[1] = i;
    ProcId p = topo.Id(c);
    EXPECT_EQ(dest[static_cast<std::size_t>(p)], p);
  }
}

TEST(PermutationsTest, AntipodalTravelsDiameterEverywhere) {
  Topology topo(2, 8, Wrap::kTorus);
  auto dest = AntipodalPermutation(topo);
  for (ProcId p = 0; p < topo.size(); ++p) {
    EXPECT_EQ(topo.Dist(p, dest[static_cast<std::size_t>(p)]), topo.Diameter());
  }
}

TEST(PermutationsTest, UnshuffleIsPermutation) {
  Topology topo(2, 8, Wrap::kMesh);
  BlockGrid grid(topo, 2);  // m = 4, B = 16, m | B
  auto dest = UnshufflePermutation(grid);
  EXPECT_TRUE(IsPermutation(dest));
}

TEST(PermutationsTest, UnshuffleSpreadsBlockEvenly) {
  // Every source block sends exactly B/m packets to every block.
  Topology topo(2, 8, Wrap::kMesh);
  BlockGrid grid(topo, 2);
  auto dest = UnshufflePermutation(grid);
  const std::int64_t m = grid.num_blocks();
  std::vector<std::int64_t> count(static_cast<std::size_t>(m * m), 0);
  for (ProcId p = 0; p < topo.size(); ++p) {
    BlockId from = grid.BlockOf(p);
    BlockId to = grid.BlockOf(dest[static_cast<std::size_t>(p)]);
    ++count[static_cast<std::size_t>(from * m + to)];
  }
  for (std::int64_t c : count) EXPECT_EQ(c, grid.block_volume() / m);
}

TEST(PermutationsTest, UnshuffleMatchesPaperFormulaOnChain) {
  // Laid out along the blocked snake, the unshuffle is an m-way unshuffle of
  // the chain: chain position j*B + i -> (i mod m)*B + j + floor(i/m)*m.
  Topology topo(2, 8, Wrap::kMesh);
  BlockGrid grid(topo, 2);
  auto dest = UnshufflePermutation(grid);
  const std::int64_t m = grid.num_blocks();
  for (ProcId p = 0; p < topo.size(); ++p) {
    const std::int64_t j = grid.BlockOf(p);
    const std::int64_t i = grid.OffsetOf(p);
    const ProcId q = dest[static_cast<std::size_t>(p)];
    EXPECT_EQ(grid.BlockOf(q), i % m);
    EXPECT_EQ(grid.OffsetOf(q), j + (i / m) * m);
  }
}

TEST(PermutationsTest, UnshuffleRejectsBadGrid) {
  Topology topo(2, 6, Wrap::kMesh);
  BlockGrid grid(topo, 2);  // b = 3, m = 4, B = 9: m does not divide B
  EXPECT_THROW(UnshufflePermutation(grid), std::invalid_argument);
}

TEST(PermutationsTest, IsPermutationRejectsBadInputs) {
  EXPECT_TRUE(IsPermutation({0, 1, 2}));
  EXPECT_FALSE(IsPermutation({0, 0, 2}));
  EXPECT_FALSE(IsPermutation({0, 1, 3}));
  EXPECT_FALSE(IsPermutation({0, 1, -1}));
}

TEST(PermutationsTest, BitReversalIsPermutationForEverySide) {
  for (int n : {2, 3, 4, 5, 6, 7, 8, 9, 16}) {
    Topology topo(2, n, Wrap::kMesh);
    EXPECT_TRUE(IsPermutation(BitReversalPermutation(topo))) << "n=" << n;
  }
}

TEST(PermutationsTest, BitReversalIsSelfInverseOnPowerOfTwoSides) {
  for (int n : {2, 4, 8, 16}) {
    Topology topo(2, n, Wrap::kMesh);
    auto dest = BitReversalPermutation(topo);
    for (ProcId p = 0; p < topo.size(); ++p) {
      EXPECT_EQ(
          dest[static_cast<std::size_t>(dest[static_cast<std::size_t>(p)])], p)
          << "n=" << n << " p=" << p;
    }
  }
}

TEST(PermutationsTest, BitReversalMatchesClassicTableOnChain) {
  // d=1, n=8: the textbook 3-bit reversal.
  Topology topo(1, 8, Wrap::kMesh);
  auto dest = BitReversalPermutation(topo);
  const std::vector<ProcId> expected = {0, 4, 2, 6, 1, 5, 3, 7};
  EXPECT_EQ(dest, expected);
}

TEST(PermutationsTest, HotSpotAssignmentStaysInRangeAndConcentrates) {
  Topology topo(3, 4, Wrap::kMesh);
  Rng rng(42);
  auto dest = HotSpotAssignment(topo, 2, 1.0, rng);
  ASSERT_EQ(dest.size(), static_cast<std::size_t>(topo.size()));
  // skew=1: every destination is one of the (at most) 2 hot processors.
  std::vector<ProcId> uniq(dest);
  std::sort(uniq.begin(), uniq.end());
  uniq.erase(std::unique(uniq.begin(), uniq.end()), uniq.end());
  EXPECT_LE(uniq.size(), 2u);
  for (ProcId v : dest) {
    EXPECT_GE(v, 0);
    EXPECT_LT(v, topo.size());
  }
}

TEST(PermutationsTest, HotSpotAssignmentIsSeedDeterministic) {
  Topology topo(2, 6, Wrap::kMesh);
  Rng a(7);
  Rng b(7);
  Rng c(8);
  EXPECT_EQ(HotSpotAssignment(topo, 4, 0.5, a),
            HotSpotAssignment(topo, 4, 0.5, b));
  Rng d(7);
  // A different seed almost surely changes the assignment on 36 draws.
  EXPECT_NE(HotSpotAssignment(topo, 4, 0.5, d),
            HotSpotAssignment(topo, 4, 0.5, c));
}

}  // namespace
}  // namespace mdmesh
