#include "util/stats.h"

#include <gtest/gtest.h>

#include <cmath>

namespace mdmesh {
namespace {

TEST(AccumulatorTest, Empty) {
  Accumulator acc;
  EXPECT_EQ(acc.count(), 0);
  EXPECT_EQ(acc.min(), 0.0);
  EXPECT_EQ(acc.max(), 0.0);
  EXPECT_EQ(acc.mean(), 0.0);
  EXPECT_EQ(acc.stddev(), 0.0);
}

TEST(AccumulatorTest, SingleValue) {
  Accumulator acc;
  acc.Add(3.5);
  EXPECT_EQ(acc.count(), 1);
  EXPECT_EQ(acc.min(), 3.5);
  EXPECT_EQ(acc.max(), 3.5);
  EXPECT_EQ(acc.mean(), 3.5);
  EXPECT_EQ(acc.variance(), 0.0);
}

TEST(AccumulatorTest, KnownMoments) {
  Accumulator acc;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) acc.Add(x);
  EXPECT_EQ(acc.count(), 8);
  EXPECT_DOUBLE_EQ(acc.mean(), 5.0);
  EXPECT_DOUBLE_EQ(acc.variance(), 4.0);  // classic example set
  EXPECT_DOUBLE_EQ(acc.stddev(), 2.0);
  EXPECT_EQ(acc.min(), 2.0);
  EXPECT_EQ(acc.max(), 9.0);
  EXPECT_DOUBLE_EQ(acc.sum(), 40.0);
}

TEST(AccumulatorTest, MergeMatchesSequential) {
  Accumulator whole, left, right;
  for (int i = 0; i < 100; ++i) {
    double x = std::sin(i) * 10.0;
    whole.Add(x);
    (i < 37 ? left : right).Add(x);
  }
  left.Merge(right);
  EXPECT_EQ(left.count(), whole.count());
  EXPECT_NEAR(left.mean(), whole.mean(), 1e-12);
  EXPECT_NEAR(left.variance(), whole.variance(), 1e-10);
  EXPECT_EQ(left.min(), whole.min());
  EXPECT_EQ(left.max(), whole.max());
}

TEST(AccumulatorTest, MergeWithEmpty) {
  Accumulator a, empty;
  a.Add(1.0);
  a.Add(2.0);
  a.Merge(empty);
  EXPECT_EQ(a.count(), 2);
  Accumulator b;
  b.Merge(a);
  EXPECT_EQ(b.count(), 2);
  EXPECT_DOUBLE_EQ(b.mean(), 1.5);
}

TEST(HistogramTest, BasicCounts) {
  Histogram h(10);
  h.Add(0);
  h.Add(3);
  h.Add(3);
  h.Add(9);
  EXPECT_EQ(h.total(), 4);
  EXPECT_EQ(h.Count(0), 1);
  EXPECT_EQ(h.Count(3), 2);
  EXPECT_EQ(h.Count(9), 1);
  EXPECT_EQ(h.overflow(), 0);
}

TEST(HistogramTest, OverflowClampsToLastBucket) {
  Histogram h(4);
  h.Add(100);
  EXPECT_EQ(h.overflow(), 1);
  EXPECT_EQ(h.Count(3), 1);
  EXPECT_EQ(h.total(), 1);
}

TEST(HistogramTest, Quantiles) {
  Histogram h(100);
  for (int i = 0; i < 100; ++i) h.Add(i);
  EXPECT_EQ(h.Quantile(0.0), 0);
  EXPECT_EQ(h.Quantile(0.5), 49);
  EXPECT_EQ(h.Quantile(1.0), 99);
  EXPECT_EQ(h.Quantile(0.99), 98);
}

TEST(HistogramTest, PercentileEmptyIsZero) {
  Histogram h(8);
  EXPECT_DOUBLE_EQ(h.Percentile(0.5), 0.0);
}

TEST(HistogramTest, PercentileInterpolatesBetweenSamples) {
  Histogram h(16);
  h.Add(0);
  h.Add(10);
  // Fractional rank 0.5 * (2 - 1) = 0.5 — halfway between the two samples.
  EXPECT_DOUBLE_EQ(h.Percentile(0.5), 5.0);
  EXPECT_DOUBLE_EQ(h.Percentile(0.0), 0.0);
  EXPECT_DOUBLE_EQ(h.Percentile(1.0), 10.0);
}

TEST(HistogramTest, PercentileMatchesQuantileOnExactRanks) {
  Histogram h(100);
  for (int i = 0; i < 101; ++i) h.Add(i % 100);
  // 101 samples: rank q * 100 is integral for q in {0, 0.25, 0.5, 1}.
  for (double q : {0.0, 0.25, 0.5, 1.0}) {
    EXPECT_DOUBLE_EQ(h.Percentile(q), static_cast<double>(h.Quantile(q))) << q;
  }
}

TEST(QuantileHistogramTest, EmptyAnswersZero) {
  QuantileHistogram h(8);
  EXPECT_EQ(h.count(), 0);
  EXPECT_EQ(h.min(), 0);
  EXPECT_EQ(h.max(), 0);
  EXPECT_DOUBLE_EQ(h.mean(), 0.0);
  EXPECT_DOUBLE_EQ(h.Quantile(0.5), 0.0);
  EXPECT_DOUBLE_EQ(h.Quantile(0.99), 0.0);
}

TEST(QuantileHistogramTest, SingletonIsExactAtEveryQuantile) {
  QuantileHistogram h(8);
  h.Add(7);
  for (double q : {0.0, 0.5, 0.95, 0.99, 1.0}) {
    EXPECT_DOUBLE_EQ(h.Quantile(q), 7.0) << q;
  }
  EXPECT_EQ(h.min(), 7);
  EXPECT_EQ(h.max(), 7);
  EXPECT_DOUBLE_EQ(h.mean(), 7.0);
}

TEST(QuantileHistogramTest, AllEqualIsExactEvenAfterWidthGrowth) {
  QuantileHistogram h(4);
  // Force width > 1, then fill with one repeated value: the clamp to the
  // observed [min, max] range must keep every quantile exact.
  for (int i = 0; i < 100; ++i) h.Add(33);
  EXPECT_DOUBLE_EQ(h.Quantile(0.5), 33.0);
  EXPECT_DOUBLE_EQ(h.Quantile(0.99), 33.0);
}

TEST(QuantileHistogramTest, ExactWhileWidthIsOne) {
  QuantileHistogram h(128);
  for (int i = 0; i < 100; ++i) h.Add(i);
  EXPECT_EQ(h.width(), 1);
  EXPECT_NEAR(h.Quantile(0.5), 49.5, 1.0);
  EXPECT_DOUBLE_EQ(h.Quantile(0.0), 0.0);
  EXPECT_DOUBLE_EQ(h.Quantile(1.0), 99.0);
}

TEST(QuantileHistogramTest, WidthDoublesAndQuantilesStayBracketed) {
  QuantileHistogram h(8);
  for (int i = 0; i < 1000; ++i) h.Add(i);
  EXPECT_GT(h.width(), 1);
  EXPECT_EQ(h.count(), 1000);
  EXPECT_EQ(h.min(), 0);
  EXPECT_EQ(h.max(), 999);
  const double p50 = h.Quantile(0.5);
  // Interpolated inside a wide bin: bounded by one bucket width of error.
  EXPECT_NEAR(p50, 500.0, static_cast<double>(h.width()));
  EXPECT_GE(h.Quantile(0.99), p50);
  EXPECT_LE(h.Quantile(1.0), 999.0);
}

TEST(QuantileHistogramTest, MergeMatchesSequential) {
  QuantileHistogram a(16);
  QuantileHistogram b(16);
  QuantileHistogram all(16);
  for (int i = 0; i < 200; ++i) {
    ((i % 2 == 0) ? a : b).Add(i);
    all.Add(i);
  }
  a.Merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_EQ(a.min(), all.min());
  EXPECT_EQ(a.max(), all.max());
  EXPECT_DOUBLE_EQ(a.mean(), all.mean());
  EXPECT_NEAR(a.Quantile(0.5), all.Quantile(0.5),
              static_cast<double>(all.width()));
}

TEST(QuantileHistogramTest, MergeWithEmptyIsIdentity) {
  QuantileHistogram a(8);
  a.Add(3);
  a.Add(5);
  QuantileHistogram empty(8);
  a.Merge(empty);
  EXPECT_EQ(a.count(), 2);
  empty.Merge(a);
  EXPECT_EQ(empty.count(), 2);
  EXPECT_EQ(empty.max(), 5);
}

TEST(QuantileHistogramTest, ToStringNamesTheSummaryFields) {
  QuantileHistogram h(8);
  h.Add(1);
  h.Add(2);
  const std::string s = h.ToString();
  EXPECT_NE(s.find("n=2"), std::string::npos) << s;
  EXPECT_NE(s.find("p50="), std::string::npos) << s;
  EXPECT_NE(s.find("p95="), std::string::npos) << s;
  EXPECT_NE(s.find("p99="), std::string::npos) << s;
  EXPECT_NE(s.find("max=2"), std::string::npos) << s;
}

TEST(AccumulatorTest, RestoreMomentsRoundTripsExactly) {
  Accumulator a;
  for (double x : {3.0, -1.5, 8.25, 0.0, 4.75, 2.0}) a.Add(x);

  Accumulator b;
  b.RestoreMoments(a.count(), a.mean(), a.m2(), a.min(), a.max());
  EXPECT_EQ(b.count(), a.count());
  EXPECT_EQ(b.mean(), a.mean());
  EXPECT_EQ(b.m2(), a.m2());
  EXPECT_EQ(b.min(), a.min());
  EXPECT_EQ(b.max(), a.max());

  // The restored accumulator keeps accumulating identically: adding the
  // same tail to both must leave them bit-equal (Welford updates are
  // deterministic given equal state).
  for (double x : {7.0, -2.25}) {
    a.Add(x);
    b.Add(x);
  }
  EXPECT_EQ(b.count(), a.count());
  EXPECT_EQ(b.mean(), a.mean());
  EXPECT_EQ(b.m2(), a.m2());
  EXPECT_EQ(b.min(), a.min());
  EXPECT_EQ(b.max(), a.max());
}

TEST(AccumulatorTest, RestoreMomentsClampsNegativeCount) {
  Accumulator a;
  a.RestoreMoments(-5, 1.0, 2.0, 0.0, 3.0);
  EXPECT_EQ(a.count(), 0);
}

TEST(QuantileHistogramTest, RestoreStateRoundTripsExactly) {
  QuantileHistogram h(16);
  for (std::int64_t v : {1, 5, 9, 200, 3, 77, 41, 12}) h.Add(v);  // grows width

  QuantileHistogram r(2);
  ASSERT_TRUE(r.RestoreState(h.width(), h.count(), h.min(), h.max(), h.sum(),
                             h.raw_buckets()));
  EXPECT_EQ(r.width(), h.width());
  EXPECT_EQ(r.count(), h.count());
  EXPECT_EQ(r.min(), h.min());
  EXPECT_EQ(r.max(), h.max());
  EXPECT_EQ(r.sum(), h.sum());
  for (double q : {0.0, 0.5, 0.95, 0.99, 1.0}) {
    EXPECT_EQ(r.Quantile(q), h.Quantile(q)) << "q=" << q;
  }

  // Continues identically after the restore, including further growth.
  h.Add(5000);
  r.Add(5000);
  EXPECT_EQ(r.width(), h.width());
  EXPECT_EQ(r.Quantile(0.99), h.Quantile(0.99));
}

TEST(QuantileHistogramTest, RestoreStateRejectsMalformedInput) {
  QuantileHistogram h(8);
  h.Add(3);
  // Invalid width, negative count, too few buckets: all rejected, and the
  // histogram keeps its prior state.
  EXPECT_FALSE(h.RestoreState(0, 1, 0, 0, 0.0, {0, 0}));
  EXPECT_FALSE(h.RestoreState(1, -1, 0, 0, 0.0, {0, 0}));
  EXPECT_FALSE(h.RestoreState(1, 1, 0, 0, 0.0, {1}));
  EXPECT_EQ(h.count(), 1);
  EXPECT_EQ(h.Quantile(0.5), 3.0);
}

}  // namespace
}  // namespace mdmesh
