#include "util/stats.h"

#include <gtest/gtest.h>

#include <cmath>

namespace mdmesh {
namespace {

TEST(AccumulatorTest, Empty) {
  Accumulator acc;
  EXPECT_EQ(acc.count(), 0);
  EXPECT_EQ(acc.min(), 0.0);
  EXPECT_EQ(acc.max(), 0.0);
  EXPECT_EQ(acc.mean(), 0.0);
  EXPECT_EQ(acc.stddev(), 0.0);
}

TEST(AccumulatorTest, SingleValue) {
  Accumulator acc;
  acc.Add(3.5);
  EXPECT_EQ(acc.count(), 1);
  EXPECT_EQ(acc.min(), 3.5);
  EXPECT_EQ(acc.max(), 3.5);
  EXPECT_EQ(acc.mean(), 3.5);
  EXPECT_EQ(acc.variance(), 0.0);
}

TEST(AccumulatorTest, KnownMoments) {
  Accumulator acc;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) acc.Add(x);
  EXPECT_EQ(acc.count(), 8);
  EXPECT_DOUBLE_EQ(acc.mean(), 5.0);
  EXPECT_DOUBLE_EQ(acc.variance(), 4.0);  // classic example set
  EXPECT_DOUBLE_EQ(acc.stddev(), 2.0);
  EXPECT_EQ(acc.min(), 2.0);
  EXPECT_EQ(acc.max(), 9.0);
  EXPECT_DOUBLE_EQ(acc.sum(), 40.0);
}

TEST(AccumulatorTest, MergeMatchesSequential) {
  Accumulator whole, left, right;
  for (int i = 0; i < 100; ++i) {
    double x = std::sin(i) * 10.0;
    whole.Add(x);
    (i < 37 ? left : right).Add(x);
  }
  left.Merge(right);
  EXPECT_EQ(left.count(), whole.count());
  EXPECT_NEAR(left.mean(), whole.mean(), 1e-12);
  EXPECT_NEAR(left.variance(), whole.variance(), 1e-10);
  EXPECT_EQ(left.min(), whole.min());
  EXPECT_EQ(left.max(), whole.max());
}

TEST(AccumulatorTest, MergeWithEmpty) {
  Accumulator a, empty;
  a.Add(1.0);
  a.Add(2.0);
  a.Merge(empty);
  EXPECT_EQ(a.count(), 2);
  Accumulator b;
  b.Merge(a);
  EXPECT_EQ(b.count(), 2);
  EXPECT_DOUBLE_EQ(b.mean(), 1.5);
}

TEST(HistogramTest, BasicCounts) {
  Histogram h(10);
  h.Add(0);
  h.Add(3);
  h.Add(3);
  h.Add(9);
  EXPECT_EQ(h.total(), 4);
  EXPECT_EQ(h.Count(0), 1);
  EXPECT_EQ(h.Count(3), 2);
  EXPECT_EQ(h.Count(9), 1);
  EXPECT_EQ(h.overflow(), 0);
}

TEST(HistogramTest, OverflowClampsToLastBucket) {
  Histogram h(4);
  h.Add(100);
  EXPECT_EQ(h.overflow(), 1);
  EXPECT_EQ(h.Count(3), 1);
  EXPECT_EQ(h.total(), 1);
}

TEST(HistogramTest, Quantiles) {
  Histogram h(100);
  for (int i = 0; i < 100; ++i) h.Add(i);
  EXPECT_EQ(h.Quantile(0.0), 0);
  EXPECT_EQ(h.Quantile(0.5), 49);
  EXPECT_EQ(h.Quantile(1.0), 99);
  EXPECT_EQ(h.Quantile(0.99), 98);
}

}  // namespace
}  // namespace mdmesh
