#include "bounds/lemma41.h"

#include <gtest/gtest.h>

#include <cmath>

#include <tuple>

namespace mdmesh {
namespace {

TEST(Lemma41Test, BoundFormulas) {
  EXPECT_DOUBLE_EQ(Lemma41VolumeBoundNormalized(4, 1.0), std::exp(-1.0));
  EXPECT_DOUBLE_EQ(Lemma41SurfaceBoundNormalized(16, 1.0), 8.0 * std::exp(-1.0));
  EXPECT_DOUBLE_EQ(Lemma41VolumeBoundNormalized(0, 0.5), 1.0);
}

TEST(Lemma41Test, BoundsDecayExponentiallyInD) {
  for (int d = 2; d < 64; d *= 2) {
    EXPECT_GT(Lemma41VolumeBoundNormalized(d, 0.5),
              Lemma41VolumeBoundNormalized(2 * d, 0.5));
    EXPECT_GT(Lemma41SurfaceBoundNormalized(d, 0.5),
              Lemma41SurfaceBoundNormalized(2 * d, 0.5));
  }
}

class Lemma41HoldsTest
    : public ::testing::TestWithParam<std::tuple<int, int, double>> {};

TEST_P(Lemma41HoldsTest, ExactCountsRespectTheAnalyticBounds) {
  auto [d, n, gamma] = GetParam();
  EXPECT_LE(ExactVolumeNormalized(d, n, gamma),
            Lemma41VolumeBoundNormalized(d, gamma))
      << "volume bound violated at d=" << d << " n=" << n << " gamma=" << gamma;
  EXPECT_LE(ExactSurfaceNormalized(d, n, gamma),
            Lemma41SurfaceBoundNormalized(d, gamma))
      << "surface bound violated at d=" << d << " n=" << n << " gamma=" << gamma;
  EXPECT_TRUE(CheckLemma41(d, n, gamma));
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, Lemma41HoldsTest,
    ::testing::Combine(::testing::Values(2, 4, 8, 16, 32),
                       ::testing::Values(9, 17, 33),
                       ::testing::Values(0.1, 0.3, 0.5, 0.7, 0.9)));

TEST(Lemma41Test, VolumeBoundIsAsymptoticallyTightIsh) {
  // The exact normalized volume at gamma=0.5 should not be absurdly far
  // below the bound for moderate d (the bound is Chernoff, so a gap of a
  // few orders is expected but it must not be vacuous at small d).
  const double exact = ExactVolumeNormalized(4, 17, 0.5);
  const double bound = Lemma41VolumeBoundNormalized(4, 0.5);
  EXPECT_GT(exact, 0.0);
  EXPECT_LT(exact, bound);
}

}  // namespace
}  // namespace mdmesh
