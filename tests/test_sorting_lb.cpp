#include "bounds/sorting_lb.h"

#include <gtest/gtest.h>

#include <cmath>

#include "bounds/diamond.h"
#include "bounds/lemma41.h"

namespace mdmesh {
namespace {

TEST(SortingLbTest, Lemma42EvaluatesConsistently) {
  // For moderate d the capacity condition should hold with comfortable slack
  // at small gamma once d is large enough; the bound value must track the
  // formula D + (1-gamma)D/2 - n - d*n^beta.
  Lemma42Eval eval = EvalLemma42(16, 17, 0.5, 0.7);
  const double D = 16.0 * 16.0;
  const double expected =
      D + 0.5 * D / 2.0 - 17.0 - 16.0 * std::pow(17.0, 0.7);
  EXPECT_DOUBLE_EQ(eval.bound_steps, expected);
  EXPECT_DOUBLE_EQ(eval.bound_over_D, expected / D);
}

TEST(SortingLbTest, ConditionHoldsForLargeD) {
  // d*S*T < n^d - V once the diamond shrinks (Lemma 4.1 decay).
  Lemma42Eval eval = EvalLemma42(32, 9, 0.6, 0.7);
  EXPECT_TRUE(eval.condition_holds)
      << "lhs=" << eval.lhs << " rhs=" << eval.rhs;
}

TEST(SortingLbTest, ConditionFailsForSmallD) {
  // At d = 2 the diamond surface is Theta(n) and the whole network drains
  // into it quickly: the inequality cannot hold.
  Lemma42Eval eval = EvalLemma42(2, 33, 0.3, 0.7);
  EXPECT_FALSE(eval.condition_holds);
}

TEST(SortingLbTest, LhsRhsAreNormalizedSanely) {
  Lemma42Eval eval = EvalLemma42(8, 17, 0.5, 0.7);
  EXPECT_GT(eval.rhs, 0.0);
  EXPECT_LE(eval.rhs, 1.0);
  EXPECT_GE(eval.lhs, 0.0);
}

TEST(SortingLbTest, FindD0NoCopyMonotoneInEps) {
  // Larger eps (weaker bound) must not need a larger dimension. The Chernoff
  // decay rate is gamma^2/16, so d0 is in the hundreds-to-thousands here.
  const int d_loose = FindD0NoCopy(0.4, 0.7, 100000);
  const int d_tight = FindD0NoCopy(0.25, 0.7, 100000);
  ASSERT_GT(d_loose, 0);
  ASSERT_GT(d_tight, 0);
  EXPECT_LE(d_loose, d_tight);
}

TEST(SortingLbTest, FindD0NoCopyRejectsBadEps) {
  EXPECT_EQ(FindD0NoCopy(0.0, 0.7, 100), -1);
  EXPECT_EQ(FindD0NoCopy(0.6, 0.7, 100), -1);  // gamma = 1.2 out of range
}

TEST(SortingLbTest, FindD0CopyingThresholds) {
  const int d0 = FindD0Copying(0.2, 0.01, 100);
  ASSERT_GT(d0, 0);
  // Analytic: e^{-0.04 d/4} <= 0.01 => d >= 100 ln(100) / ... check the
  // returned d0 actually satisfies the premise and d0-1 does not.
  EXPECT_LE(Lemma41VolumeBoundNormalized(d0, 0.2), 0.01);
  EXPECT_GT(Lemma41VolumeBoundNormalized(d0 - 1, 0.2), 0.01);
}

TEST(SortingLbTest, CoefficientsMatchTheorems) {
  EXPECT_DOUBLE_EQ(NoCopyCoefficient(0.0), 1.5);     // Theorem 4.1
  EXPECT_DOUBLE_EQ(CopyMeshCoefficient(0.0), 1.25);  // Theorem 4.3
  EXPECT_DOUBLE_EQ(CopyTorusCoefficient(0.0), 1.5);  // Theorem 4.4
  EXPECT_DOUBLE_EQ(NoCopyCoefficient(0.1), 1.4);
}

TEST(SortingLbTest, BoundApproachesThreeHalvesD) {
  // bound/D = 1 + (1-gamma)/2 - n/(d(n-1)) - n^beta/(n-1): the additive
  // terms vanish as n grows (at fixed beta < 1) and as d grows.
  const double at_small = EvalLemma42(64, 33, 0.2, 0.5).bound_over_D;
  const double at_large = EvalLemma42(64, 257, 0.2, 0.5).bound_over_D;
  const double limit = 1.0 + (1.0 - 0.2) / 2.0;
  EXPECT_GT(at_large, at_small);
  EXPECT_LT(at_large, limit);
  EXPECT_GT(at_large, limit - 0.1);
}

}  // namespace
}  // namespace mdmesh
