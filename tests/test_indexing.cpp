#include "meshsim/indexing.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <set>
#include <tuple>

namespace mdmesh {
namespace {

struct Scheme {
  std::string name;
  int b;  // block side, 0 for unblocked schemes
};

class IndexingBijectionTest
    : public ::testing::TestWithParam<std::tuple<std::string, int, int, int>> {};

TEST_P(IndexingBijectionTest, IsBijectionWithInverse) {
  auto [name, d, n, b] = GetParam();
  auto scheme = MakeIndexing(name, d, n, b);
  Topology topo(d, n, Wrap::kMesh);
  std::set<std::int64_t> seen;
  for (ProcId p = 0; p < topo.size(); ++p) {
    Point c = topo.Coords(p);
    std::int64_t idx = scheme->Index(c);
    ASSERT_GE(idx, 0);
    ASSERT_LT(idx, topo.size());
    EXPECT_TRUE(seen.insert(idx).second) << "duplicate index " << idx;
    Point back = scheme->PointAt(idx);
    for (int i = 0; i < d; ++i) {
      EXPECT_EQ(back[static_cast<std::size_t>(i)], c[static_cast<std::size_t>(i)]);
    }
  }
  EXPECT_EQ(seen.size(), static_cast<std::size_t>(topo.size()));
}

INSTANTIATE_TEST_SUITE_P(
    AllSchemes, IndexingBijectionTest,
    ::testing::Values(
        std::tuple{"row-major", 1, 9, 0}, std::tuple{"row-major", 2, 6, 0},
        std::tuple{"row-major", 3, 4, 0}, std::tuple{"row-major", 4, 3, 0},
        std::tuple{"snake", 1, 9, 0}, std::tuple{"snake", 2, 6, 0},
        std::tuple{"snake", 2, 7, 0}, std::tuple{"snake", 3, 4, 0},
        std::tuple{"snake", 3, 5, 0}, std::tuple{"snake", 4, 3, 0},
        std::tuple{"blocked-row-major", 2, 6, 3},
        std::tuple{"blocked-row-major", 3, 4, 2},
        std::tuple{"blocked-snake", 2, 6, 3},
        std::tuple{"blocked-snake", 2, 8, 4},
        std::tuple{"blocked-snake", 3, 4, 2},
        std::tuple{"blocked-snake", 3, 6, 2},
        std::tuple{"blocked-snake", 4, 4, 2}));

TEST(IndexingTest, RowMajor2D) {
  RowMajorIndexing idx(2, 3);
  // Dimension 1 most significant: (x, y) -> y*3 + x.
  Point p{};
  p[0] = 2;
  p[1] = 1;
  EXPECT_EQ(idx.Index(p), 5);
  p[0] = 0;
  p[1] = 2;
  EXPECT_EQ(idx.Index(p), 6);
}

TEST(IndexingTest, SnakeAdjacencyProperty) {
  // Consecutive snake indices are neighbors in the mesh — the defining
  // property of a snake (Hamiltonian path).
  for (auto [d, n] : {std::pair{2, 4}, std::pair{2, 5}, std::pair{3, 3}, std::pair{3, 4}}) {
    SnakeIndexing idx(d, n);
    Topology topo(d, n, Wrap::kMesh);
    for (std::int64_t t = 0; t + 1 < topo.size(); ++t) {
      Point a = idx.PointAt(t);
      Point b = idx.PointAt(t + 1);
      EXPECT_EQ(topo.DistCoords(a, b), 1)
          << "snake breaks between index " << t << " and " << t + 1
          << " (d=" << d << ", n=" << n << ")";
    }
  }
}

TEST(IndexingTest, Snake2DMatchesDefinition) {
  // Row-by-row boustrophedon: row 0 left-to-right, row 1 right-to-left...
  // With our convention dimension 1 is the row index.
  SnakeIndexing idx(2, 4);
  Point p{};
  p[1] = 0;
  for (int x = 0; x < 4; ++x) {
    p[0] = x;
    EXPECT_EQ(idx.Index(p), x);
  }
  p[1] = 1;
  for (int x = 0; x < 4; ++x) {
    p[0] = x;
    EXPECT_EQ(idx.Index(p), 4 + (3 - x));
  }
}

TEST(IndexingTest, BlockedSnakeKeepsBlocksContiguous) {
  const int d = 2, n = 8, b = 4;
  BlockedIndexing idx(d, n, b, BlockedIndexing::Order::kSnake);
  // All b^d indices of a block form one contiguous range.
  const std::int64_t vol = IPow(b, d);
  Topology topo(d, n, Wrap::kMesh);
  std::map<std::int64_t, std::pair<std::int64_t, std::int64_t>> block_range;
  for (ProcId p = 0; p < topo.size(); ++p) {
    Point c = topo.Coords(p);
    std::int64_t block_key = (c[0] / b) + 100 * (c[1] / b);
    std::int64_t i = idx.Index(c);
    auto it = block_range.find(block_key);
    if (it == block_range.end()) {
      block_range[block_key] = {i, i};
    } else {
      it->second.first = std::min(it->second.first, i);
      it->second.second = std::max(it->second.second, i);
    }
  }
  for (const auto& [key, range] : block_range) {
    EXPECT_EQ(range.second - range.first + 1, vol) << "block " << key;
    EXPECT_EQ(range.first % vol, 0);
  }
}

TEST(IndexingTest, BlockedRequiresDivisibility) {
  EXPECT_THROW(BlockedIndexing(2, 8, 3, BlockedIndexing::Order::kSnake),
               std::invalid_argument);
  EXPECT_THROW(MakeIndexing("blocked-snake", 2, 8, 0), std::invalid_argument);
}

TEST(IndexingTest, FactoryRejectsUnknown) {
  EXPECT_THROW(MakeIndexing("peano", 2, 8, 0), std::invalid_argument);
}

TEST(IndexingTest, IndexTableIsConsistent) {
  Topology topo(2, 6, Wrap::kMesh);
  SnakeIndexing idx(2, 6);
  auto table = idx.IndexTable(topo);
  for (ProcId p = 0; p < topo.size(); ++p) {
    EXPECT_EQ(table[static_cast<std::size_t>(p)], idx.Index(topo.Coords(p)));
  }
}


TEST(IndexingTest, MortonBijection) {
  for (auto [d, n] : {std::pair{1, 8}, std::pair{2, 8}, std::pair{3, 4}, std::pair{4, 4}}) {
    MortonIndexing idx(d, n);
    Topology topo(d, n, Wrap::kMesh);
    std::set<std::int64_t> seen;
    for (ProcId p = 0; p < topo.size(); ++p) {
      Point c = topo.Coords(p);
      std::int64_t i = idx.Index(c);
      ASSERT_GE(i, 0);
      ASSERT_LT(i, topo.size());
      EXPECT_TRUE(seen.insert(i).second);
      Point back = idx.PointAt(i);
      for (int k = 0; k < d; ++k) {
        EXPECT_EQ(back[static_cast<std::size_t>(k)], c[static_cast<std::size_t>(k)]);
      }
    }
  }
}

TEST(IndexingTest, Morton2DKnownValues) {
  // Bit interleave with dimension 0 in the low bit: (x, y) = (3, 1) ->
  // x bits 11, y bits 01 -> interleaved y1 x1 y0 x0 = 0111 = 7.
  MortonIndexing idx(2, 4);
  Point p{};
  p[0] = 3;
  p[1] = 1;
  EXPECT_EQ(idx.Index(p), 7);
  p[0] = 0;
  p[1] = 0;
  EXPECT_EQ(idx.Index(p), 0);
  p[0] = 3;
  p[1] = 3;
  EXPECT_EQ(idx.Index(p), 15);
}

TEST(IndexingTest, MortonRequiresPowerOfTwo) {
  EXPECT_THROW(MortonIndexing(2, 6), std::invalid_argument);
  EXPECT_THROW(MakeIndexing("morton", 2, 12, 0), std::invalid_argument);
}

TEST(IndexingTest, MortonKeepsAlignedSubcubesContiguous) {
  // The defining locality property: each aligned 2^k-subcube occupies one
  // contiguous index range.
  MortonIndexing idx(2, 8);
  Topology topo(2, 8, Wrap::kMesh);
  for (int half = 0; half < 4; ++half) {
    const int x0 = (half % 2) * 4;
    const int y0 = (half / 2) * 4;
    std::int64_t lo = topo.size();
    std::int64_t hi = -1;
    for (int x = x0; x < x0 + 4; ++x) {
      for (int y = y0; y < y0 + 4; ++y) {
        Point p{};
        p[0] = x;
        p[1] = y;
        const std::int64_t i = idx.Index(p);
        lo = std::min(lo, i);
        hi = std::max(hi, i);
      }
    }
    EXPECT_EQ(hi - lo + 1, 16) << "subcube " << half;
  }
}

}  // namespace
}  // namespace mdmesh
