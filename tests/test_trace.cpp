// Tests for the observability layer: JsonWriter, phase spans (TraceContext),
// the engine's StepProbe hook, and the CongestionTrace downsampling ring.
#include "obs/trace.h"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <limits>
#include <sstream>
#include <string>
#include <vector>

#include "net/engine.h"
#include "obs/json.h"
#include "obs/probe.h"
#include "routing/permutations.h"
#include "util/rng.h"

namespace mdmesh {
namespace {

// ---------------------------------------------------------------- JsonWriter

TEST(JsonWriterTest, EscapesSpecialCharacters) {
  EXPECT_EQ(JsonEscape("plain"), "plain");
  EXPECT_EQ(JsonEscape("a\"b"), "a\\\"b");
  EXPECT_EQ(JsonEscape("a\\b"), "a\\\\b");
  EXPECT_EQ(JsonEscape("line\nfeed\ttab"), "line\\nfeed\\ttab");
  EXPECT_EQ(JsonEscape(std::string("nul\x01") + "x"), "nul\\u0001x");
}

TEST(JsonWriterTest, EscapesEveryControlCharacter) {
  // All of U+0000..U+001F must come out as an escape — either a short form
  // (\n, \t, ...) or \u00XX — never as a raw byte.
  for (int c = 0; c < 0x20; ++c) {
    const std::string escaped =
        JsonEscape(std::string(1, static_cast<char>(c)));
    ASSERT_FALSE(escaped.empty()) << "control char " << c;
    EXPECT_EQ(escaped[0], '\\') << "control char " << c;
    for (char out : escaped) {
      EXPECT_GE(static_cast<unsigned char>(out), 0x20u)
          << "raw control byte leaked for char " << c;
    }
  }
}

TEST(JsonWriterTest, MultiByteUtf8PassesThroughUnchanged) {
  // JsonEscape must treat bytes >= 0x80 as opaque payload: 2-, 3-, and
  // 4-byte UTF-8 sequences survive byte-for-byte.
  const std::string two_byte = "caf\xc3\xa9";              // é
  const std::string three_byte = "\xe6\xa1\x81";           // 桁
  const std::string four_byte = "\xf0\x9f\x94\xa5 hot";    // 🔥
  EXPECT_EQ(JsonEscape(two_byte), two_byte);
  EXPECT_EQ(JsonEscape(three_byte), three_byte);
  EXPECT_EQ(JsonEscape(four_byte), four_byte);
  // Mixed: escapes around multi-byte text leave the UTF-8 alone.
  EXPECT_EQ(JsonEscape("\"\xc3\xa9\\"), "\\\"\xc3\xa9\\\\");
}

TEST(JsonWriterTest, WritesNestedStructureWithCommas) {
  std::ostringstream os;
  JsonWriter w(os);
  w.BeginObject()
      .Key("steps").Int(190)
      .Key("ok").Bool(true)
      .Key("phases").BeginArray()
          .BeginObject().Key("name").String("phase_a").EndObject()
          .BeginObject().Key("name").String("phase_b").EndObject()
      .EndArray()
      .EndObject();
  EXPECT_TRUE(w.Done());
  EXPECT_EQ(os.str(),
            "{\"steps\":190,\"ok\":true,\"phases\":"
            "[{\"name\":\"phase_a\"},{\"name\":\"phase_b\"}]}");
}

TEST(JsonWriterTest, NonFiniteDoublesBecomeNull) {
  std::ostringstream os;
  JsonWriter w(os);
  w.BeginArray()
      .Double(std::numeric_limits<double>::quiet_NaN())
      .Double(std::numeric_limits<double>::infinity())
      .Double(1.5)
      .EndArray();
  EXPECT_TRUE(w.Done());
  EXPECT_EQ(os.str(), "[null,null,1.5]");
}

TEST(JsonWriterTest, DoneIsFalseWhileContainerOpen) {
  std::ostringstream os;
  JsonWriter w(os);
  w.BeginObject();
  EXPECT_FALSE(w.Done());
  w.EndObject();
  EXPECT_TRUE(w.Done());
}

// ------------------------------------------------------- Span / TraceContext

TEST(TraceTest, NullSpanIgnoresEverything) {
  Span null_span;
  EXPECT_FALSE(null_span);
  null_span.RecordRouting(10, 100, 3, 1);  // must not crash
  null_span.Close();
  Span from_null_ctx = TraceContext::OpenIf(nullptr, "phase");
  EXPECT_FALSE(from_null_ctx);
}

TEST(TraceTest, SpansNestUnderInnermostOpenSpan) {
  TraceContext ctx;
  EXPECT_TRUE(ctx.empty());
  {
    Span outer = ctx.Open("sort");
    outer.RecordLocal(5, 2);
    {
      Span inner = ctx.Open("route");
      inner.RecordRouting(40, 400, 4, 1);
    }
    Span sibling = ctx.Open("fixup");
    sibling.RecordRouting(8, 16, 2, 0);
  }
  EXPECT_FALSE(ctx.empty());
  const auto& nodes = ctx.nodes();
  ASSERT_EQ(nodes.size(), 4u);  // virtual root + 3 spans
  EXPECT_EQ(nodes[1].name, "sort");
  EXPECT_EQ(nodes[1].parent, 0u);
  ASSERT_EQ(nodes[1].children.size(), 2u);
  EXPECT_EQ(nodes[nodes[1].children[0]].name, "route");
  EXPECT_EQ(nodes[nodes[1].children[1]].name, "fixup");

  const SpanStats totals = ctx.Totals();
  EXPECT_EQ(totals.steps, 48);
  EXPECT_EQ(totals.local_steps, 5);
  EXPECT_EQ(totals.moves, 416);
  EXPECT_EQ(totals.max_queue, 4);
  EXPECT_EQ(totals.max_overshoot, 1);
}

TEST(TraceTest, RecordMergesCountersAndMaxima) {
  TraceContext ctx;
  {
    Span span = ctx.Open("phase");
    span.RecordRouting(10, 100, 3, 2);
    span.RecordRouting(20, 50, 5, 1);
  }
  const SpanStats& stats = ctx.nodes()[1].stats;
  EXPECT_EQ(stats.steps, 30);    // counters add
  EXPECT_EQ(stats.moves, 150);
  EXPECT_EQ(stats.max_queue, 5);  // maxima take the max
  EXPECT_EQ(stats.max_overshoot, 2);
}

TEST(TraceTest, CloseIsIdempotentAndStampsWallClock) {
  TraceContext ctx;
  Span span = ctx.Open("phase");
  span.Close();
  span.Close();  // second close must be a no-op
  EXPECT_GE(ctx.nodes()[1].stats.wall_ms, 0.0);
}

TEST(TraceTest, SpansCarryWallClockBeginEndTimestamps) {
  TraceContext ctx;
  {
    Span outer = ctx.Open("outer");
    Span inner = ctx.Open("inner");
  }
  const auto& nodes = ctx.nodes();
  ASSERT_EQ(nodes.size(), 3u);
  for (std::size_t i = 1; i < nodes.size(); ++i) {
    EXPECT_GE(nodes[i].begin_ms, 0.0);
    EXPECT_GE(nodes[i].end_ms, nodes[i].begin_ms);
  }
  // The child opened after and closed before its parent.
  EXPECT_LE(nodes[1].begin_ms, nodes[2].begin_ms);
  EXPECT_GE(nodes[1].end_ms, nodes[2].end_ms);
}

TEST(TraceTest, OpenSpanHasNegativeEndUntilClosed) {
  TraceContext ctx;
  Span span = ctx.Open("phase");
  EXPECT_LT(ctx.nodes()[1].end_ms, 0.0);  // still open
  span.Close();
  EXPECT_GE(ctx.nodes()[1].end_ms, 0.0);
}

TEST(TraceTest, StepClockAdvancesWithRecordedSteps) {
  TraceContext ctx;
  EXPECT_EQ(ctx.step_cursor(), 0);
  {
    Span a = ctx.Open("a");
    a.RecordRouting(40, 400, 4, 0);
  }
  EXPECT_EQ(ctx.step_cursor(), 40);
  {
    Span b = ctx.Open("b");
    b.RecordLocal(5, 2);
    b.RecordRouting(10, 30, 2, 0);
  }
  EXPECT_EQ(ctx.step_cursor(), 55);  // 40 + 5 local + 10 routing
  const auto& nodes = ctx.nodes();
  // Span extents on the step axis: [0,40) for a, [40,55) for b.
  EXPECT_EQ(nodes[1].begin_steps, 0);
  EXPECT_EQ(nodes[1].end_steps, 40);
  EXPECT_EQ(nodes[2].begin_steps, 40);
  EXPECT_EQ(nodes[2].end_steps, 55);
}

TEST(TraceTest, ToJsonIncludesTimestampKeys) {
  TraceContext ctx;
  {
    Span span = ctx.Open("phase");
    span.RecordRouting(10, 100, 3, 0);
  }
  const std::string json = ctx.ToJson();
  EXPECT_NE(json.find("\"begin_ms\":"), std::string::npos) << json;
  EXPECT_NE(json.find("\"end_ms\":"), std::string::npos);
  EXPECT_NE(json.find("\"begin_steps\":0"), std::string::npos);
  EXPECT_NE(json.find("\"end_steps\":10"), std::string::npos);
}

TEST(TraceTest, ClearResetsStepCursor) {
  TraceContext ctx;
  {
    Span span = ctx.Open("phase");
    span.RecordRouting(10, 100, 3, 0);
  }
  ctx.Clear();
  EXPECT_EQ(ctx.step_cursor(), 0);
}

TEST(TraceTest, RenderTreeShowsNamesAndStepsOverD) {
  TraceContext ctx;
  {
    Span outer = ctx.Open("two_phase");
    Span inner = ctx.Open("phase_a_route");
    inner.RecordRouting(95, 500, 4, 0);
  }
  const std::string tree = ctx.RenderTree(/*diameter=*/190);
  EXPECT_NE(tree.find("two_phase"), std::string::npos) << tree;
  EXPECT_NE(tree.find("phase_a_route"), std::string::npos);
  EXPECT_NE(tree.find("0.50"), std::string::npos);  // 95 / 190 steps/D
  // Without a diameter the steps/D column disappears.
  EXPECT_EQ(ctx.RenderTree().find("steps/D"), std::string::npos);
}

TEST(TraceTest, ToJsonSerializesTheSpanTree) {
  TraceContext ctx;
  {
    Span outer = ctx.Open("sort");
    Span inner = ctx.Open("local-sort");
    inner.RecordLocal(7, 1);
  }
  const std::string json = ctx.ToJson();
  EXPECT_NE(json.find("\"name\":\"sort\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"name\":\"local-sort\""), std::string::npos);
  EXPECT_NE(json.find("\"local_steps\":7"), std::string::npos);
  EXPECT_NE(json.find("\"children\":"), std::string::npos);
}

TEST(TraceTest, ClearDropsRecordedSpans) {
  TraceContext ctx;
  { Span span = ctx.Open("phase"); }
  EXPECT_FALSE(ctx.empty());
  ctx.Clear();
  EXPECT_TRUE(ctx.empty());
  { Span span = ctx.Open("again"); }
  EXPECT_EQ(ctx.nodes()[1].name, "again");
}

// ----------------------------------------------------------------- StepProbe

// Records every snapshot so tests can assert per-step invariants.
class RecordingProbe : public StepProbe {
 public:
  struct Step {
    std::int64_t step, in_flight, arrivals, moves;
    std::vector<std::int64_t> dim_dir_moves;
    std::int64_t hist_total = -1;
  };

  bool WantsQueueHistogram() const override { return want_hist_; }
  void OnStep(const StepSnapshot& snap) override {
    Step s{snap.step, snap.in_flight, snap.arrivals, snap.moves, {}, -1};
    if (snap.dim_dir_moves != nullptr) {
      s.dim_dir_moves.assign(snap.dim_dir_moves,
                             snap.dim_dir_moves + 2 * snap.dims);
    }
    if (snap.queue_hist != nullptr) s.hist_total = snap.queue_hist->total();
    steps.push_back(std::move(s));
  }

  bool want_hist_ = true;
  std::vector<Step> steps;
};

RouteResult RouteRandomPermutation(const Topology& topo, StepProbe* probe,
                                   std::uint64_t seed) {
  EngineOptions opts;
  opts.probe = probe;
  Engine engine(topo, opts);
  Network net(topo);
  Rng rng(seed);
  auto dest = RandomPermutation(topo, rng);
  for (ProcId p = 0; p < topo.size(); ++p) {
    Packet pkt;
    pkt.id = p;
    pkt.dest = dest[static_cast<std::size_t>(p)];
    net.Add(p, pkt);
  }
  return engine.Route(net);
}

TEST(StepProbeTest, PerStepInvariantsHoldForAPermutation) {
  Topology topo(2, 8, Wrap::kMesh);
  RecordingProbe probe;
  RouteResult r = RouteRandomPermutation(topo, &probe, 7);
  ASSERT_TRUE(r.completed);
  ASSERT_EQ(static_cast<std::int64_t>(probe.steps.size()), r.steps);

  std::int64_t arrivals_sum = 0;
  std::int64_t moves_sum = 0;
  std::int64_t prev_in_flight = topo.size() + 1;
  for (std::size_t i = 0; i < probe.steps.size(); ++i) {
    const auto& s = probe.steps[i];
    EXPECT_EQ(s.step, static_cast<std::int64_t>(i) + 1);  // 1-based, contiguous
    arrivals_sum += s.arrivals;
    moves_sum += s.moves;
    // All packets are injected before step 1, so in-flight only shrinks.
    EXPECT_LE(s.in_flight, prev_in_flight);
    prev_in_flight = s.in_flight;
    // Per-dimension directed-link moves partition the step's total moves.
    ASSERT_EQ(s.dim_dir_moves.size(), 4u);  // d=2 -> 2*d directed classes
    std::int64_t dim_sum = 0;
    for (std::int64_t v : s.dim_dir_moves) {
      EXPECT_GE(v, 0);
      dim_sum += v;
    }
    EXPECT_EQ(dim_sum, s.moves);
    // The histogram covers every processor's queue, exactly once.
    EXPECT_EQ(s.hist_total, topo.size());
  }
  // Arrivals across the run account for every packet that had to move.
  std::int64_t displaced = 0;
  {
    Rng rng(7);
    auto dest = RandomPermutation(topo, rng);
    for (ProcId p = 0; p < topo.size(); ++p) {
      if (dest[static_cast<std::size_t>(p)] != p) ++displaced;
    }
  }
  EXPECT_EQ(arrivals_sum, displaced);
  EXPECT_EQ(probe.steps.back().in_flight, 0);
  EXPECT_EQ(moves_sum, r.moves);
}

TEST(StepProbeTest, HistogramIsOmittedWhenProbeDeclines) {
  Topology topo(2, 4, Wrap::kMesh);
  RecordingProbe probe;
  probe.want_hist_ = false;
  RouteResult r = RouteRandomPermutation(topo, &probe, 3);
  ASSERT_TRUE(r.completed);
  for (const auto& s : probe.steps) EXPECT_EQ(s.hist_total, -1);
}

TEST(StepProbeTest, ProbeDoesNotChangeRoutingOutcome) {
  Topology topo(2, 8, Wrap::kMesh);
  RecordingProbe probe;
  RouteResult with_probe = RouteRandomPermutation(topo, &probe, 11);
  RouteResult without = RouteRandomPermutation(topo, nullptr, 11);
  EXPECT_EQ(with_probe.steps, without.steps);
  EXPECT_EQ(with_probe.moves, without.moves);
  EXPECT_EQ(with_probe.max_queue, without.max_queue);
}

// ----------------------------------------------------------- CongestionTrace

StepSnapshot SyntheticSnapshot(std::int64_t step,
                               const std::int64_t* dim_moves) {
  StepSnapshot snap;
  snap.step = step;
  snap.in_flight = 100 - step;
  snap.arrivals = 1;
  snap.moves = dim_moves[0] + dim_moves[1] + dim_moves[2] + dim_moves[3];
  snap.dims = 2;
  snap.dim_dir_moves = dim_moves;
  return snap;
}

TEST(CongestionTraceTest, StaysWithinCapacityAndDoublesStride) {
  CongestionTrace trace(/*capacity=*/8);
  const std::int64_t dim_moves[4] = {3, 1, 2, 0};
  for (std::int64_t step = 1; step <= 1000; ++step) {
    trace.OnStep(SyntheticSnapshot(step, dim_moves));
  }
  EXPECT_LT(trace.samples().size(), 8u);
  EXPECT_GE(trace.samples().size(), 2u);
  EXPECT_EQ(trace.total_steps(), 1000);
  // 1000 steps into < 8 slots needs stride >= 128 = 2^7.
  EXPECT_GE(trace.stride(), 128);
  // Retained steps are strictly increasing and span the time axis: the last
  // sample is within one stride of the end.
  std::int64_t prev = 0;
  for (const auto& s : trace.samples()) {
    EXPECT_GT(s.step, prev);
    prev = s.step;
  }
  EXPECT_GT(trace.samples().back().step, 1000 - trace.stride());
}

TEST(CongestionTraceTest, DownsamplingKeepsFirstSampleIntact) {
  // Regression: the in-place downsample used to self-move samples_[0],
  // emptying its dim_dir_moves vector.
  CongestionTrace trace(/*capacity=*/4);
  const std::int64_t dim_moves[4] = {5, 4, 3, 2};
  for (std::int64_t step = 1; step <= 64; ++step) {
    trace.OnStep(SyntheticSnapshot(step, dim_moves));
  }
  ASSERT_FALSE(trace.samples().empty());
  const auto& first = trace.samples().front();
  EXPECT_EQ(first.step, 1);
  ASSERT_EQ(first.dim_dir_moves.size(), 4u);
  EXPECT_EQ(first.dim_dir_moves[0], 5);
  EXPECT_EQ(first.dim_dir_moves[3], 2);
}

TEST(CongestionTraceTest, AccumulatesStepsAcrossRouteCalls) {
  Topology topo(2, 8, Wrap::kMesh);
  CongestionTrace trace;
  RouteResult first = RouteRandomPermutation(topo, &trace, 5);
  const std::int64_t after_first = trace.total_steps();
  EXPECT_EQ(after_first, first.steps);
  RouteResult second = RouteRandomPermutation(topo, &trace, 6);
  EXPECT_EQ(trace.total_steps(), first.steps + second.steps);
  // Cumulative `step` keeps growing while `run_step` restarts per Route call.
  const auto& samples = trace.samples();
  ASSERT_FALSE(samples.empty());
  EXPECT_EQ(samples.back().step, trace.total_steps());
  EXPECT_LE(samples.back().run_step, second.steps);
}

TEST(CongestionTraceTest, WriteCsvEmitsHeaderAndOneRowPerSample) {
  Topology topo(2, 8, Wrap::kMesh);
  CongestionTrace trace;
  RouteResult r = RouteRandomPermutation(topo, &trace, 9);
  ASSERT_TRUE(r.completed);
  std::ostringstream os;
  trace.WriteCsv(os);
  std::istringstream is(os.str());
  std::string header;
  ASSERT_TRUE(std::getline(is, header));
  EXPECT_EQ(header,
            "step,run_step,in_flight,arrivals,moves,queue_p50,queue_p99,"
            "queue_max,dim0_dec,dim0_inc,dim1_dec,dim1_inc,active_procs,"
            "injected");
  std::size_t rows = 0;
  std::string line;
  while (std::getline(is, line)) {
    if (!line.empty()) ++rows;
  }
  EXPECT_EQ(rows, trace.samples().size());
}

TEST(CongestionTraceTest, ClearResetsToInitialState) {
  CongestionTrace trace(4);
  const std::int64_t dim_moves[4] = {1, 1, 1, 1};
  for (std::int64_t step = 1; step <= 32; ++step) {
    trace.OnStep(SyntheticSnapshot(step, dim_moves));
  }
  trace.Clear();
  EXPECT_TRUE(trace.samples().empty());
  EXPECT_EQ(trace.stride(), 1);
  EXPECT_EQ(trace.total_steps(), 0);
  trace.OnStep(SyntheticSnapshot(1, dim_moves));
  ASSERT_EQ(trace.samples().size(), 1u);
  EXPECT_EQ(trace.samples().front().step, 1);
}

}  // namespace
}  // namespace mdmesh
