#include "sorting/verify.h"

#include <gtest/gtest.h>

namespace mdmesh {
namespace {

void FillSorted(Network& net, const BlockGrid& grid, std::int64_t k) {
  net.Clear();
  std::int64_t t = 0;
  for (BlockId b = 0; b < grid.num_blocks(); ++b) {
    for (std::int64_t off = 0; off < grid.block_volume(); ++off) {
      for (std::int64_t r = 0; r < k; ++r, ++t) {
        Packet pkt;
        pkt.key = static_cast<std::uint64_t>(t);
        pkt.id = t;
        net.Add(grid.ProcAt(b, off), pkt);
      }
    }
  }
}

TEST(VerifyTest, SortedPlacementAccepted) {
  Topology topo(2, 8, Wrap::kMesh);
  BlockGrid grid(topo, 2);
  Network net(topo);
  FillSorted(net, grid, 1);
  GroundTruth truth = CaptureGroundTruth(net);
  EXPECT_TRUE(IsGloballySorted(net, grid, 1));
  std::string err;
  EXPECT_TRUE(VerifySortedPlacement(net, grid, 1, truth, &err)) << err;
}

TEST(VerifyTest, SwappedPairRejected) {
  Topology topo(2, 8, Wrap::kMesh);
  BlockGrid grid(topo, 2);
  Network net(topo);
  FillSorted(net, grid, 1);
  GroundTruth truth = CaptureGroundTruth(net);
  std::swap(net.At(grid.ProcAt(0, 0))[0], net.At(grid.ProcAt(3, 5))[0]);
  EXPECT_FALSE(IsGloballySorted(net, grid, 1));
  EXPECT_FALSE(VerifySortedPlacement(net, grid, 1, truth, nullptr));
}

TEST(VerifyTest, MutatedKeyRejectedByMultiset) {
  Topology topo(2, 4, Wrap::kMesh);
  BlockGrid grid(topo, 2);
  Network net(topo);
  FillSorted(net, grid, 1);
  GroundTruth truth = CaptureGroundTruth(net);
  net.At(0)[0].key += 1000000;
  std::string err;
  EXPECT_FALSE(VerifySortedPlacement(net, grid, 1, truth, &err));
  EXPECT_FALSE(err.empty());
}

TEST(VerifyTest, LostPacketRejected) {
  Topology topo(2, 4, Wrap::kMesh);
  BlockGrid grid(topo, 2);
  Network net(topo);
  FillSorted(net, grid, 1);
  GroundTruth truth = CaptureGroundTruth(net);
  net.At(5).clear();
  EXPECT_FALSE(VerifySortedPlacement(net, grid, 1, truth, nullptr));
}

TEST(VerifyTest, MultiPacketWithinProcOrderIrrelevant) {
  Topology topo(2, 4, Wrap::kMesh);
  BlockGrid grid(topo, 2);
  Network net(topo);
  FillSorted(net, grid, 3);
  // Shuffle within one processor: still sorted (ranks are per-processor).
  auto& q = net.At(grid.ProcAt(1, 2));
  std::swap(q[0], q[2]);
  EXPECT_TRUE(IsGloballySorted(net, grid, 3));
}

TEST(VerifyTest, WrongCountPerProcessorRejected) {
  Topology topo(2, 4, Wrap::kMesh);
  BlockGrid grid(topo, 2);
  Network net(topo);
  FillSorted(net, grid, 2);
  auto& q = net.At(grid.ProcAt(0, 0));
  Packet extra = q[0];
  net.At(grid.ProcAt(0, 1)).push_back(extra);
  q.pop_back();
  EXPECT_FALSE(IsGloballySorted(net, grid, 2));
}

TEST(VerifyTest, DuplicateKeysAcceptedWhenOrderedById) {
  Topology topo(1, 8, Wrap::kMesh);
  BlockGrid grid(topo, 2);
  Network net(topo);
  for (ProcId p = 0; p < 8; ++p) {
    Packet pkt;
    pkt.key = 7;  // all equal
    pkt.id = p;
    net.Add(p, pkt);
  }
  EXPECT_TRUE(IsGloballySorted(net, grid, 1));
}

TEST(VerifyTest, AllDelivered) {
  Topology topo(2, 4, Wrap::kMesh);
  Network net(topo);
  Packet pkt;
  pkt.dest = 3;
  net.Add(3, pkt);
  EXPECT_TRUE(VerifyAllDelivered(net));
  net.Add(2, pkt);  // dest 3 but parked at 2
  EXPECT_FALSE(VerifyAllDelivered(net));
}

}  // namespace
}  // namespace mdmesh
