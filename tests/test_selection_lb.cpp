#include "bounds/selection_lb.h"

#include <gtest/gtest.h>

#include <cmath>

#include "bounds/diamond.h"

namespace mdmesh {
namespace {

TEST(SelectionLbTest, Coefficients) {
  EXPECT_DOUBLE_EQ(SelectionLowerCoefficient(0.0), 9.0 / 16.0);
  EXPECT_DOUBLE_EQ(SelectionLowerCoefficient(0.0625), 0.5);
  EXPECT_DOUBLE_EQ(SelectionRadiusCoefficient(false), 0.5);
  EXPECT_DOUBLE_EQ(SelectionRadiusCoefficient(true), 1.0);
}

TEST(SelectionLbTest, LowerBoundExceedsTrivialForSmallEps) {
  // The whole point of Theorem 4.5: 9/16 > 1/2 for eps < 1/16.
  EXPECT_GT(SelectionLowerCoefficient(0.05), SelectionRadiusCoefficient(false));
}

TEST(SelectionLbTest, PremiseHoldsAndBallShrinksWithD) {
  // The (weak) existence premise holds broadly; the quantitative content is
  // that the ball around the boundary point covers a VANISHING fraction as
  // d grows — that is what turns "some packet survives" into "most do".
  EXPECT_TRUE(CheckSelectionPremise(48, 17, 0.1));
  const double D16 = 16.0 * 16.0;
  const double D48 = 48.0 * 16.0;
  const auto off = static_cast<std::int64_t>(std::llround(0.9 * 16.0 / 2.0));
  const double ball16 =
      BallFractionAround(16, 17, off, (5.0 / 16.0 - 0.2) * D16);
  const double ball48 =
      BallFractionAround(48, 17, off, (5.0 / 16.0 - 0.2) * D48);
  EXPECT_LT(ball48, ball16);
  EXPECT_LT(ball48, 0.05);
}

TEST(SelectionLbTest, PremiseMonotoneInD) {
  bool held = false;
  for (int d : {4, 8, 16, 32, 64}) {
    const bool now = CheckSelectionPremise(d, 9, 0.1);
    if (held) {
      EXPECT_TRUE(now) << "premise regressed at d=" << d;
    }
    held = held || now;
  }
  EXPECT_TRUE(held);
}

TEST(SelectionLbTest, FindD0SelectionBehaves) {
  const int d0 = FindD0Selection(0.1);
  ASSERT_GT(d0, 0);
  EXPECT_EQ(FindD0Selection(0.0), -1);
  EXPECT_EQ(FindD0Selection(0.2), -1);  // 5/16 - 2 eps would go negative soon
  // Tighter eps needs at least as many dimensions.
  const int d0_tight = FindD0Selection(0.05);
  ASSERT_GT(d0_tight, 0);
  EXPECT_GE(d0_tight, d0);
}

}  // namespace
}  // namespace mdmesh
