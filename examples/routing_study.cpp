// routing_study: the Section 5 two-phase router vs plain greedy on a chosen
// permutation and network, with per-phase measurements.
//
//   $ ./routing_study --perm=transpose --d=2 --n=64
//   $ ./routing_study --perm=random --d=3 --n=16 --torus
//   $ ./routing_study --perm=reversal --d=2 --n=128 --g=8 --randomized
//   $ ./routing_study --perm=transpose --trace --json=run.json --trace-csv=run.csv
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "core/mdmesh.h"
#include "routing/permutations.h"
#include "util/cli.h"

namespace {

// Compact congestion profile: in-flight packet counts over time, bucketed
// into a fixed-width bar chart.
std::string Sparkline(const std::vector<std::int64_t>& series, int width) {
  static const char* levels[] = {" ", ".", ":", "-", "=", "+", "*", "#"};
  if (series.empty()) return "";
  std::int64_t peak = 1;
  for (std::int64_t v : series) peak = std::max(peak, v);
  std::string out;
  const std::size_t n = series.size();
  for (int x = 0; x < width; ++x) {
    const std::size_t at = static_cast<std::size_t>(x) * n / static_cast<std::size_t>(width);
    const auto level = static_cast<std::size_t>(
        series[at] * 7 / peak);
    out += levels[level];
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace mdmesh;
  Cli cli("routing_study",
          "near-diameter permutation routing (Theorems 5.1-5.3) vs greedy");
  cli.AddString("perm", "transpose", "random | reversal | transpose");
  cli.AddInt("d", 2, "dimension");
  cli.AddInt("n", 64, "side length");
  cli.AddInt("g", 4, "blocks per side for the midpoint grid");
  cli.AddBool("torus", false, "wraparound edges");
  cli.AddBool("randomized", false, "random midpoints (Valiant-Brebner style)");
  cli.AddBool("overlap", false, "overlap the two phases (Sec. 6 open question)");
  cli.AddInt("nu32", -1, "midpoint slack nu in n/32 units (-1 = paper default)");
  cli.AddInt("seed", 1, "rng seed");
  cli.AddBool("trace", false, "print the phase-span tree after the run");
  AddOutputFlags(cli);
  if (!cli.Parse(argc, argv)) return 2;
  const OutputFlags out = GetOutputFlags(cli);

  MeshSpec spec{static_cast<int>(cli.GetInt("d")),
                static_cast<int>(cli.GetInt("n")),
                cli.GetBool("torus") ? Wrap::kTorus : Wrap::kMesh};
  TwoPhaseOptions opts;
  opts.g = static_cast<int>(cli.GetInt("g"));
  opts.randomized = cli.GetBool("randomized");
  opts.overlap = cli.GetBool("overlap");
  opts.seed = static_cast<std::uint64_t>(cli.GetInt("seed"));
  if (cli.GetInt("nu32") >= 0) {
    opts.nu = static_cast<double>(cli.GetInt("nu32")) * spec.n / 32.0;
  }
  std::vector<std::int64_t> in_flight_series;
  opts.engine.observer = [&](std::int64_t, std::int64_t in_flight, std::int64_t) {
    in_flight_series.push_back(in_flight);
  };
  // One tracer serves every sequential Route call (phase 1, phase 2, and
  // the greedy baseline); each run finalizes its own log, so per-phase
  // critical-path decompositions come out independently.
  JourneyTracer journeys(JourneyOptionsFromFlags(out));
  if (out.WantsJourneys()) opts.engine.journeys = &journeys;
  TraceContext trace_ctx;
  opts.trace = &trace_ctx;
  CongestionTrace congestion;
  if (out.WantsTrace()) opts.engine.probe = &congestion;

  RoutingRow row = RunRoutingExperiment(spec, cli.GetString("perm"), opts);
  const auto D = static_cast<double>(row.diameter);

  std::printf("%s permutation on %s (D = %lld)\n", row.perm_name.c_str(),
              spec.ToString().c_str(), static_cast<long long>(row.diameter));
  std::printf("two-phase (nu = %.2f, min|S| = %lld):\n", row.two_phase.nu_used,
              static_cast<long long>(row.two_phase.min_s_size));
  std::printf("  phase 1: %lld steps (max distance %lld)\n",
              static_cast<long long>(row.two_phase.phase1.steps),
              static_cast<long long>(row.two_phase.phase1.max_distance));
  std::printf("  phase 2: %lld steps (max distance %lld)\n",
              static_cast<long long>(row.two_phase.phase2.steps),
              static_cast<long long>(row.two_phase.phase2.max_distance));
  std::printf("  total:   %lld steps = %.3f x D (claimed <= (D + %s)/D), %s\n",
              static_cast<long long>(row.two_phase.total_steps),
              static_cast<double>(row.two_phase.total_steps) / D,
              spec.wrap == Wrap::kTorus ? "n/8" : "n",
              row.two_phase.delivered ? "delivered" : "INCOMPLETE");
  std::printf("plain greedy baseline: %lld steps = %.3f x D, max queue %lld\n",
              static_cast<long long>(row.baseline.route.steps),
              row.baseline.steps_over_diameter(),
              static_cast<long long>(row.baseline.route.max_queue));
  const auto print_critical = [](const char* label, const RouteResult& r) {
    if (r.critical_path == nullptr || !r.critical_path->have_last) return;
    const CriticalPathReport& cp = *r.critical_path;
    std::printf(
        "  %s critical path: packet %lld latency %lld = %lld move(s) + "
        "%lld lost-bid + %lld dead-link wait(s); bound gap %lld over lb "
        "%lld\n",
        label, static_cast<long long>(cp.last.id),
        static_cast<long long>(cp.last.latency()),
        static_cast<long long>(cp.last.moves),
        static_cast<long long>(cp.last.waits_lost_bid),
        static_cast<long long>(cp.last.waits_links_dead),
        static_cast<long long>(cp.bound_gap),
        static_cast<long long>(cp.lower_bound));
  };
  if (out.WantsJourneys()) {
    print_critical("greedy", row.baseline.route);
    print_critical("phase 1", row.two_phase.phase1);
    print_critical("phase 2", row.two_phase.phase2);
    // The JSONL artifact holds the greedy baseline's journeys — that is
    // the run whose contention the two-phase router exists to shed.
    if (row.baseline.route.journeys != nullptr) {
      std::ofstream jf = OpenOutputFile(out.journeys, "--journeys");
      WriteJourneysJsonl(*row.baseline.route.journeys, spec.d, jf);
    }
  }
  std::printf("in-flight packets over time (both phases):\n  [%s]\n",
              Sparkline(in_flight_series, 64).c_str());
  if (cli.GetBool("trace")) {
    std::printf("\nphase spans:\n%s", trace_ctx.RenderTree(row.diameter).c_str());
  }
  if (out.WantsJson()) {
    BenchJson json("routing_study");
    json.Add(row);
    json.WriteFile(out.json);
  }
  if (out.WantsTrace()) {
    std::ofstream csv = OpenOutputFile(out.trace_csv, "--trace-csv");
    congestion.WriteCsv(csv);
    std::fprintf(stderr, "wrote %zu trace sample(s) to %s\n",
                 congestion.samples().size(), out.trace_csv.c_str());
  }
  return row.two_phase.delivered ? 0 : 1;
}
