// workload_demo: drive a mesh with open-loop traffic and watch it saturate.
// Picks a traffic pattern, injects Bernoulli arrivals at a chosen rate, and
// prints the accepted throughput, the latency quantiles, and the stability
// verdict; --saturate bisects for the saturation rate instead. Rates are
// given in per-mille so they stay integer flags:
//
//   $ ./workload_demo --d=3 --n=8 --pattern=uniform --rate-pm=100
//   $ ./workload_demo --d=2 --n=16 --pattern=bitrev --rate-pm=400
//   $ ./workload_demo --d=2 --n=16 --pattern=hotspot --saturate
#include <cstdio>
#include <sstream>
#include <string>

#include "core/mdmesh.h"
#include "util/cli.h"

int main(int argc, char** argv) {
  using namespace mdmesh;
  Cli cli("workload_demo", "open-loop injection on a mesh or torus");
  cli.AddInt("d", 2, "dimension");
  cli.AddInt("n", 16, "side length");
  cli.AddBool("torus", false, "wraparound edges");
  cli.AddString("pattern", "uniform",
                "traffic pattern (uniform, bitrev, shuffle, butterfly, "
                "diagonal, transpose, reversal, hotspot)");
  cli.AddInt("rate-pm", 100, "injection rate per processor-step, per mille");
  cli.AddInt("warmup", 128, "warm-up steps (excluded from measurement)");
  cli.AddInt("measure", 512, "measurement-window steps");
  cli.AddBool("drain", false, "route the backlog out after the window");
  cli.AddInt("seed", 1, "seed for all traffic draws");
  cli.AddBool("saturate", false, "bisect for the saturation rate instead");
  AddOutputFlags(cli);
  if (!cli.Parse(argc, argv)) return 2;
  const OutputFlags out = GetOutputFlags(cli);

  const MeshSpec spec{static_cast<int>(cli.GetInt("d")),
                      static_cast<int>(cli.GetInt("n")),
                      cli.GetBool("torus") ? Wrap::kTorus : Wrap::kMesh};
  const Topology topo = spec.Build();

  PatternKind kind;
  if (!ParsePattern(cli.GetString("pattern"), &kind)) {
    std::fprintf(stderr, "unknown pattern: %s\n",
                 cli.GetString("pattern").c_str());
    return 2;
  }
  TrafficPattern pattern(topo, kind,
                         static_cast<std::uint64_t>(cli.GetInt("seed")));

  DriverOptions dopts;
  dopts.rate = static_cast<double>(cli.GetInt("rate-pm")) / 1000.0;
  dopts.warmup_steps = cli.GetInt("warmup");
  dopts.measure_steps = cli.GetInt("measure");
  dopts.drain = cli.GetBool("drain");
  dopts.seed = static_cast<std::uint64_t>(cli.GetInt("seed"));

  if (cli.GetBool("saturate")) {
    const SaturationResult sat = FindSaturationRate(topo, pattern, dopts);
    std::printf("%s, pattern %s: saturation between %.4f and %.4f\n",
                spec.ToString().c_str(), pattern.name(), sat.rate,
                sat.unstable_rate);
    Table table({"rate", "throughput", "p99", "stable"});
    for (const WorkloadResult& probe : sat.probes) {
      table.Row()
          .Cell(probe.driver.rate, 4)
          .Cell(probe.throughput, 3)
          .Cell(probe.latency_p99, 1)
          .Cell(probe.stable ? "yes" : "NO");
    }
    table.Print();
    return 0;
  }

  // With --perfetto, instrument the run: a phase span, the congestion
  // probe, the metrics registry, and thread-pool activity all feed one
  // Chrome-trace timeline. Instrumentation never changes the routing.
  TraceContext ctx;
  CongestionTrace trace;
  MetricsRegistry metrics;
  ThreadPoolActivity activity;
  EngineOptions eopts;
  if (out.WantsPerfetto()) {
    eopts.probe = &trace;
    eopts.metrics = &metrics;
    ThreadPool::Global().set_activity(&activity);
  }
  WorkloadResult r;
  {
    Span span = TraceContext::OpenIf(
        out.WantsPerfetto() ? &ctx : nullptr,
        std::string("open_loop_") + pattern.name());
    r = RunOpenLoop(topo, pattern, dopts, eopts);
    r.route.RecordTo(span);
  }
  if (out.WantsPerfetto()) {
    ThreadPool::Global().set_activity(nullptr);
    RunManifest manifest = MakeRunManifest(topo, eopts);
    manifest.seed = dopts.seed;
    manifest.binary = "workload_demo";
    ChromeTraceWriter writer(manifest);
    writer.AddSpanTree(ctx);
    writer.AddCounters(trace);
    writer.AddWorkerActivity(activity);
    writer.WriteFile(out.perfetto);
  }
  std::printf("%s, pattern %s, rate %.3f over %lld+%lld steps%s\n",
              spec.ToString().c_str(), pattern.name(), dopts.rate,
              static_cast<long long>(dopts.warmup_steps),
              static_cast<long long>(dopts.measure_steps),
              dopts.drain ? " (drained)" : "");
  std::printf("offered %lld, delivered %lld, backlog %lld -> %lld: %s\n",
              static_cast<long long>(r.offered),
              static_cast<long long>(r.delivered),
              static_cast<long long>(r.backlog_start),
              static_cast<long long>(r.backlog_end),
              r.stable ? "stable" : "SATURATED (backlog growing)");
  std::printf("throughput %.3f accepted/processor-step\n", r.throughput);
  std::printf("latency (n=%lld): mean %.1f  p50 %.1f  p95 %.1f  p99 %.1f  "
              "max %lld\n",
              static_cast<long long>(r.latency_count), r.latency_mean,
              r.latency_p50, r.latency_p95, r.latency_p99,
              static_cast<long long>(r.latency_max));
  std::printf("engine: %lld steps, %lld moves, peak %lld active procs\n",
              static_cast<long long>(r.route.steps),
              static_cast<long long>(r.route.moves),
              static_cast<long long>(r.route.peak_active_procs));

  if (out.WantsJson()) {
    BenchJson json("workload_demo");
    std::ostringstream os;
    JsonWriter w(os);
    r.WriteJson(w);
    json.AddRaw(os.str());
    json.WriteFile(out.json);
  }
  return 0;
}
