// workload_demo: drive a mesh with open-loop traffic and watch it saturate.
// Picks a traffic pattern, injects Bernoulli arrivals at a chosen rate, and
// prints the accepted throughput, the latency quantiles, and the stability
// verdict; --saturate bisects for the saturation rate instead. Rates are
// given in per-mille so they stay integer flags:
//
//   $ ./workload_demo --d=3 --n=8 --pattern=uniform --rate-pm=100
//   $ ./workload_demo --d=2 --n=16 --pattern=bitrev --rate-pm=400
//   $ ./workload_demo --d=2 --n=16 --pattern=hotspot --saturate
//
// Live monitoring: --metrics-port serves Prometheus text at
// 127.0.0.1:PORT/metrics while the run executes (plus /status JSON),
// --status-file writes the same snapshot to disk on a cadence,
// --progress prints a stderr heartbeat, --flight-recorder arms the
// engine's black-box, and --perf adds hardware counters to the phase span:
//
//   $ ./workload_demo --n=32 --measure=50000 --metrics-port=9464 --progress
//
// Packet forensics: --journeys=FILE samples per-packet hop logs (see
// --journey-rate-pm/--journey-seed/--journey-watch) and writes them as
// JSONL, printing the p99 packet's latency decomposition and the
// critical-path bound gap; with --perfetto the traced packets also join
// the timeline as async spans:
//
//   $ ./workload_demo --n=16 --rate-pm=300 --journeys=j.jsonl --journey-rate-pm=1000
//
// Crash recovery: --checkpoint=DIR snapshots the full engine+injector state
// on a step cadence (and on ^C); --resume continues from the newest valid
// snapshot, reproducing the uninterrupted run's delivery trace exactly:
//
//   $ ./workload_demo --n=16 --checkpoint=ckpts --checkpoint-every=64
//   $ ./workload_demo --n=16 --checkpoint=ckpts --resume
#include <chrono>
#include <cstdio>
#include <memory>
#include <sstream>
#include <stdexcept>
#include <string>
#include <thread>

#include "core/mdmesh.h"
#include "util/cli.h"

int main(int argc, char** argv) {
  using namespace mdmesh;
  Cli cli("workload_demo", "open-loop injection on a mesh or torus");
  cli.AddInt("d", 2, "dimension");
  cli.AddInt("n", 16, "side length");
  cli.AddBool("torus", false, "wraparound edges");
  cli.AddString("pattern", "uniform",
                "traffic pattern (uniform, bitrev, shuffle, butterfly, "
                "diagonal, transpose, reversal, hotspot)");
  cli.AddInt("rate-pm", 100, "injection rate per processor-step, per mille");
  cli.AddInt("warmup", 128, "warm-up steps (excluded from measurement)");
  cli.AddInt("measure", 512, "measurement-window steps");
  cli.AddBool("drain", false, "route the backlog out after the window");
  cli.AddInt("seed", 1, "seed for all traffic draws");
  cli.AddString("layout", "auto",
                "packet-storage layout (auto, legacy, tiled)");
  cli.AddBool("saturate", false, "bisect for the saturation rate instead");
  cli.AddInt("server", 0,
             "submit to an experiment_server on this 127.0.0.1 port and "
             "wait for the result instead of running locally");
  cli.AddInt("priority", 0, "scheduling priority for --server submissions");
  AddOutputFlags(cli);
  if (!cli.Parse(argc, argv)) return 2;
  const OutputFlags out = GetOutputFlags(cli);

  const MeshSpec spec{static_cast<int>(cli.GetInt("d")),
                      static_cast<int>(cli.GetInt("n")),
                      cli.GetBool("torus") ? Wrap::kTorus : Wrap::kMesh};
  const Topology topo = spec.Build();

  PatternKind kind;
  if (!ParsePattern(cli.GetString("pattern"), &kind)) {
    std::fprintf(stderr, "unknown pattern: %s\n",
                 cli.GetString("pattern").c_str());
    return 2;
  }
  TrafficPattern pattern(topo, kind,
                         static_cast<std::uint64_t>(cli.GetInt("seed")));

  DriverOptions dopts;
  dopts.rate = static_cast<double>(cli.GetInt("rate-pm")) / 1000.0;
  dopts.warmup_steps = cli.GetInt("warmup");
  dopts.measure_steps = cli.GetInt("measure");
  dopts.drain = cli.GetBool("drain");
  dopts.seed = static_cast<std::uint64_t>(cli.GetInt("seed"));

  // --server: the bench becomes a client of the experiment service — the
  // same flags build a RunSpec, the server executes it (deduping against
  // identical submissions), and the printed delivery_hash is byte-identical
  // to a local run because results are scheduler-independent.
  const int server_port = static_cast<int>(cli.GetInt("server"));
  if (server_port > 0) {
    RunSpec rspec;
    rspec.d = spec.d;
    rspec.n = spec.n;
    rspec.torus = spec.wrap == Wrap::kTorus;
    rspec.pattern = kind;
    rspec.pattern_seed = dopts.seed;
    rspec.driver = dopts;
    rspec.priority = static_cast<int>(cli.GetInt("priority"));
    if (!ParseLayoutMode(cli.GetString("layout"), &rspec.layout)) {
      std::fprintf(stderr, "unknown layout: %s\n",
                   cli.GetString("layout").c_str());
      return 2;
    }
    const HttpResult post =
        HttpFetch(server_port, "POST", "/runs", rspec.ToJson());
    if (!post.ok || post.status != 202) {
      std::fprintf(stderr, "submit failed: %s\n",
                   post.ok ? (std::to_string(post.status) + " " + post.body)
                               .c_str()
                           : post.error.c_str());
      return 1;
    }
    const JsonParseResult accepted = ParseJson(post.body);
    if (!accepted.ok) {
      std::fprintf(stderr, "submit failed: unparseable response\n");
      return 1;
    }
    const std::int64_t id = accepted.value["id"].AsInt();
    std::fprintf(stderr, "submitted as run %lld%s\n",
                 static_cast<long long>(id),
                 accepted.value["deduped"].AsBool() ? " (deduplicated)" : "");
    // Poll until the run leaves the queue/engine. Interrupted means the
    // server is draining; the restarted server will finish the run.
    for (;;) {
      const HttpResult poll =
          HttpFetch(server_port, "GET", "/runs/" + std::to_string(id));
      if (!poll.ok || poll.status != 200) {
        std::fprintf(stderr, "poll failed: %s\n",
                     poll.ok ? poll.body.c_str() : poll.error.c_str());
        return 1;
      }
      const JsonParseResult rec = ParseJson(poll.body);
      if (!rec.ok) {
        std::fprintf(stderr, "poll failed: unparseable record\n");
        return 1;
      }
      const std::string state = rec.value["state"].AsString();
      if (state == "done") {
        const JsonValue& result = rec.value["result"];
        std::printf("run %lld done on server :%d\n",
                    static_cast<long long>(id), server_port);
        std::printf("offered %lld, delivered %lld: %s\n",
                    static_cast<long long>(result["offered"].AsInt()),
                    static_cast<long long>(result["delivered"].AsInt()),
                    result["stable"].AsBool()
                        ? "stable"
                        : "SATURATED (backlog growing)");
        std::printf("throughput %.3f accepted/processor-step\n",
                    result["throughput"].AsDouble());
        std::printf("delivery_hash: %016llx\n",
                    static_cast<unsigned long long>(
                        rec.value["delivery_hash"].AsUInt()));
        return 0;
      }
      if (state == "failed") {
        std::fprintf(stderr, "run %lld failed: %s\n",
                     static_cast<long long>(id),
                     rec.value["error"].AsString().c_str());
        return 1;
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(100));
    }
  }

  if (cli.GetBool("saturate")) {
    const SaturationResult sat = FindSaturationRate(topo, pattern, dopts);
    std::printf("%s, pattern %s: saturation between %.4f and %.4f\n",
                spec.ToString().c_str(), pattern.name(), sat.rate,
                sat.unstable_rate);
    Table table({"rate", "throughput", "p99", "stable"});
    for (const WorkloadResult& probe : sat.probes) {
      table.Row()
          .Cell(probe.driver.rate, 4)
          .Cell(probe.throughput, 3)
          .Cell(probe.latency_p99, 1)
          .Cell(probe.stable ? "yes" : "NO");
    }
    table.Print();
    return 0;
  }

  // With --perfetto, instrument the run: a phase span, the congestion
  // probe, the metrics registry, and thread-pool activity all feed one
  // Chrome-trace timeline. Instrumentation never changes the routing.
  TraceContext ctx;
  CongestionTrace trace;
  MetricsRegistry metrics;
  ThreadPoolActivity activity;
  EngineOptions eopts;
  {
    // Injector-driven runs support either storage layout; the crash drill
    // passes --layout=tiled to prove checkpoint/resume under the tile arena.
    const std::string layout = cli.GetString("layout");
    if (layout == "legacy") {
      eopts.layout = LayoutMode::kLegacy;
    } else if (layout == "tiled") {
      eopts.layout = LayoutMode::kTiled;
    } else if (layout != "auto") {
      std::fprintf(stderr, "unknown layout: %s (auto, legacy, tiled)\n",
                   layout.c_str());
      return 2;
    }
  }
  if (out.WantsPerfetto()) {
    eopts.probe = &trace;
    ThreadPool::Global().set_activity(&activity);
  }
  if (out.WantsPerfetto() || out.WantsPublisher()) eopts.metrics = &metrics;
  if (out.perf && !ctx.EnablePerfCounters()) {
    std::fprintf(stderr, "--perf: %s\n", ctx.perf_error().c_str());
  }

  // Packet forensics: --journeys arms the deterministic journey sampler.
  // Traces are byte-identical across thread counts and layouts, so the
  // JSONL artifact is a stable forensic record of who waited where and why.
  JourneyTracer journeys(JourneyOptionsFromFlags(out));
  if (out.WantsJourneys()) eopts.journeys = &journeys;

  // Black box: --flight-recorder arms the constant-memory step ring and the
  // SIGINT/SIGTERM dump, so even a ^C'd run leaves a forensic artifact.
  FlightRecorder recorder;
  if (out.WantsFlightRecorder()) {
    recorder.set_dump_path(out.flight_recorder);
    FlightRecorder::InstallSignalHandlers();
    eopts.recorder = &recorder;
  }

  // Checkpointing: --checkpoint arms the keep-K store (and the signal
  // handlers, so ^C leaves a resumable snapshot next to any recorder dump);
  // --resume restarts from the newest generation that survives CRC and
  // options-hash validation, falling back past corrupt files.
  CheckpointOptions copts;
  std::unique_ptr<CheckpointManager> ckpt;
  EngineCheckpointState resume_state;
  bool resuming = false;
  if (out.WantsCheckpoint()) {
    copts.dir = out.checkpoint;
    copts.every_steps = out.checkpoint_every > 0 ? out.checkpoint_every : 64;
    copts.keep = static_cast<int>(out.checkpoint_keep);
    if (out.WantsPerfetto() || out.WantsPublisher()) copts.metrics = &metrics;
    ckpt = std::make_unique<CheckpointManager>(copts);
    FlightRecorder::InstallSignalHandlers();
    eopts.checkpoint = ckpt.get();
  }
  if (out.resume) {
    if (!out.WantsCheckpoint()) {
      std::fprintf(stderr, "--resume requires --checkpoint=DIR\n");
      return 2;
    }
    std::string loaded_path;
    std::string log;
    const CkptStatus status = CheckpointManager::LoadNewestValid(
        copts.dir, &resume_state, /*expected_options_hash=*/nullptr,
        &loaded_path, &log);
    if (!log.empty()) std::fprintf(stderr, "[ckpt] skipped:\n%s", log.c_str());
    if (status != CkptStatus::kOk) {
      std::fprintf(stderr, "--resume: no valid checkpoint in %s (%s)\n",
                   copts.dir.c_str(), CkptStatusName(status));
      return 1;
    }
    std::fprintf(stderr, "[ckpt] resuming from %s (step %lld)\n",
                 loaded_path.c_str(),
                 static_cast<long long>(resume_state.step));
    resuming = true;
  }

  // Live telemetry: the engine folds its totals into the registry only at
  // the end of Route, so an observer keeps per-step gauges fresh for
  // mid-run scrapes; the same hook drives the stderr heartbeat.
  ProgressMeter meter(/*step_cap=*/0, /*interval_ms=*/500, out.progress);
  if (out.progress || out.WantsPublisher()) {
    MetricsRegistry* live = eopts.metrics;
    ProgressMeter* heartbeat = &meter;
    if (live != nullptr) {
      // Register the live gauges up front so the very first scrape of the
      // endpoint already sees them (at zero) rather than a missing family.
      live->gauge("engine.live.step").Set(0);
      live->gauge("engine.live.in_flight").Set(0);
      live->counter("engine.live.arrivals");
    }
    eopts.observer = [live, heartbeat](std::int64_t step,
                                       std::int64_t in_flight,
                                       std::int64_t arrivals) {
      if (live != nullptr) {
        live->gauge("engine.live.step").Set(step);
        live->gauge("engine.live.in_flight").Set(in_flight);
        live->counter("engine.live.arrivals").Add(arrivals);
      }
      heartbeat->Step(step, in_flight, arrivals);
    };
  }

  RunManifest pub_manifest = MakeRunManifest(topo, eopts);
  pub_manifest.seed = dopts.seed;
  pub_manifest.binary = "workload_demo";
  MetricsPublisher publisher;
  if (out.WantsPublisher()) {
    MetricsPublisher::Options popts;
    popts.registry = &metrics;
    popts.port = static_cast<int>(out.metrics_port);
    popts.status_file = out.status_file;
    popts.manifest = &pub_manifest;
    if (!publisher.Start(popts)) {
      std::fprintf(stderr, "failed to start the metrics publisher\n");
      return 1;
    }
    if (publisher.port() > 0) {
      std::fprintf(stderr, "serving http://127.0.0.1:%d/metrics\n",
                   publisher.port());
    }
  }

  WorkloadResult r;
  {
    Span span = TraceContext::OpenIf(
        out.WantsPerfetto() || out.perf ? &ctx : nullptr,
        std::string("open_loop_") + pattern.name());
    try {
      r = RunOpenLoop(topo, pattern, dopts, eopts,
                      resuming ? &resume_state : nullptr);
    } catch (const std::invalid_argument& e) {
      // Engine::Resume refuses a checkpoint from a different configuration
      // (topology shape, engine options, injector presence) — resuming it
      // silently would produce a trace matching neither run.
      std::fprintf(stderr, "--resume: %s\n", e.what());
      return 1;
    }
    r.route.RecordTo(span);
  }
  publisher.Stop();
  meter.Finish();
  if (out.WantsPerfetto()) {
    ThreadPool::Global().set_activity(nullptr);
    RunManifest manifest = MakeRunManifest(topo, eopts);
    manifest.seed = dopts.seed;
    manifest.binary = "workload_demo";
    ChromeTraceWriter writer(manifest);
    writer.AddSpanTree(ctx);
    writer.AddCounters(trace);
    writer.AddWorkerActivity(activity);
    if (r.route.journeys != nullptr) {
      // Traced packets join the timeline as async spans (pid "packet
      // journeys"), so a slow packet can be eyeballed against the
      // congestion counters it flew through.
      ExportJourneysToChromeTrace(*r.route.journeys, topo.dim(), &writer);
    }
    writer.WriteFile(out.perfetto);
  }
  if (out.perf && ctx.perf_enabled() && ctx.nodes().size() > 1) {
    const PerfSample& p = ctx.nodes()[1].perf;
    std::printf("perf: cycles %lld  instructions %lld  ipc %.2f  "
                "cache-misses %lld  branch-misses %lld\n",
                static_cast<long long>(p.cycles),
                static_cast<long long>(p.instructions), p.ipc(),
                static_cast<long long>(p.cache_misses),
                static_cast<long long>(p.branch_misses));
  }
  std::printf("%s, pattern %s, rate %.3f over %lld+%lld steps%s\n",
              spec.ToString().c_str(), pattern.name(), dopts.rate,
              static_cast<long long>(dopts.warmup_steps),
              static_cast<long long>(dopts.measure_steps),
              dopts.drain ? " (drained)" : "");
  std::printf("offered %lld, delivered %lld, backlog %lld -> %lld: %s\n",
              static_cast<long long>(r.offered),
              static_cast<long long>(r.delivered),
              static_cast<long long>(r.backlog_start),
              static_cast<long long>(r.backlog_end),
              r.stable ? "stable" : "SATURATED (backlog growing)");
  std::printf("throughput %.3f accepted/processor-step\n", r.throughput);
  std::printf("latency (n=%lld): mean %.1f  p50 %.1f  p95 %.1f  p99 %.1f  "
              "max %lld\n",
              static_cast<long long>(r.latency_count), r.latency_mean,
              r.latency_p50, r.latency_p95, r.latency_p99,
              static_cast<long long>(r.latency_max));
  std::printf("engine: %lld steps, %lld moves, peak %lld active procs\n",
              static_cast<long long>(r.route.steps),
              static_cast<long long>(r.route.moves),
              static_cast<long long>(r.route.peak_active_procs));
  // The delivery hash fingerprints the full delivery trace; the crash drill
  // compares it between an interrupted+resumed run and a clean one.
  std::printf("delivery_hash: %016llx\n",
              static_cast<unsigned long long>(r.delivery_hash));
  if (out.WantsJourneys() && r.route.journeys != nullptr) {
    std::ofstream jf = OpenOutputFile(out.journeys, "--journeys");
    WriteJourneysJsonl(*r.route.journeys, topo.dim(), jf);
    std::printf("journeys: %lld traced packet(s), %lld event(s) -> %s\n",
                static_cast<long long>(r.route.journeys->traced_packets),
                static_cast<long long>(r.route.journeys->events.size()),
                out.journeys.c_str());
    const CriticalPathReport* cp = r.route.critical_path.get();
    if (cp != nullptr && cp->have_p99) {
      // The "why" behind the p99 above: how much of that packet's latency
      // was distance and how much was contention or fault holds.
      std::printf("p99 why: packet %lld latency %lld = %lld move(s) + "
                  "%lld lost-bid wait(s) + %lld dead-link wait(s)\n",
                  static_cast<long long>(cp->p99.id),
                  static_cast<long long>(cp->p99.latency()),
                  static_cast<long long>(cp->p99.moves),
                  static_cast<long long>(cp->p99.waits_lost_bid),
                  static_cast<long long>(cp->p99.waits_links_dead));
    }
    if (cp != nullptr && cp->have_last) {
      std::printf("critical path: packet %lld delivered at step %lld%s "
                  "(bound gap %lld over lower bound %lld)\n",
                  static_cast<long long>(cp->last.id),
                  static_cast<long long>(cp->last.delivery_step),
                  cp->critical_traced ? "" : " [not the run's last packet]",
                  static_cast<long long>(cp->bound_gap),
                  static_cast<long long>(cp->lower_bound));
    }
  }
  if (ckpt != nullptr && ckpt->saves() > 0) {
    std::fprintf(stderr, "[ckpt] %lld checkpoint(s) in %s (last: %s)\n",
                 static_cast<long long>(ckpt->saves()), copts.dir.c_str(),
                 ckpt->last_path().c_str());
  }

  if (out.WantsJson()) {
    BenchJson json("workload_demo");
    std::ostringstream os;
    JsonWriter w(os);
    r.WriteJson(w);
    json.AddRaw(os.str());
    json.WriteFile(out.json);
  }
  return 0;
}
