// lower_bounds_tour: interactive calculator for the Section 4 machinery —
// diamond counts, Lemma 4.1/4.2, the theorem thresholds, and the
// compatibility of an indexing scheme, for user-chosen parameters.
//
//   $ ./lower_bounds_tour --d=16 --n=33 --gamma=0.5 --beta=0.7
//   $ ./lower_bounds_tour --d=8 --scheme=morton --n=16
#include <cstdio>

#include "core/mdmesh.h"
#include "util/cli.h"

int main(int argc, char** argv) {
  using namespace mdmesh;
  Cli cli("lower_bounds_tour", "Section 4 lower-bound calculators");
  cli.AddInt("d", 16, "dimension (counting works far beyond simulable sizes)");
  cli.AddInt("n", 33, "side length for exact counting");
  cli.AddString("gamma", "0.5", "diamond shrink parameter in (0,1)");
  cli.AddString("beta", "0.7", "joker-zone exponent in (0,1)");
  cli.AddString("scheme", "blocked-snake", "indexing scheme to check (needs small d,n)");
  cli.AddInt("b", 0, "block side for blocked schemes (0 = n/2)");
  if (!cli.Parse(argc, argv)) return 2;

  const int d = static_cast<int>(cli.GetInt("d"));
  const int n = static_cast<int>(cli.GetInt("n"));
  const double gamma = std::stod(cli.GetString("gamma"));
  const double beta = std::stod(cli.GetString("beta"));

  std::printf("-- Lemma 4.1 at d=%d, n=%d, gamma=%.2f --\n", d, n, gamma);
  std::printf("  V/n^d     exact %.3e  vs bound %.3e  %s\n",
              ExactVolumeNormalized(d, n, gamma),
              Lemma41VolumeBoundNormalized(d, gamma),
              ExactVolumeNormalized(d, n, gamma) <=
                      Lemma41VolumeBoundNormalized(d, gamma)
                  ? "(holds)"
                  : "(VIOLATED)");
  std::printf("  S/n^(d-1) exact %.3e  vs bound %.3e  %s\n",
              ExactSurfaceNormalized(d, n, gamma),
              Lemma41SurfaceBoundNormalized(d, gamma),
              ExactSurfaceNormalized(d, n, gamma) <=
                      Lemma41SurfaceBoundNormalized(d, gamma)
                  ? "(holds)"
                  : "(VIOLATED)");

  Lemma42Eval eval = EvalLemma42(d, n, gamma, beta);
  std::printf("-- Lemma 4.2 (no-copy sorting) --\n");
  std::printf("  capacity: %.4f %s %.4f => condition %s\n", eval.lhs,
              eval.lhs < eval.rhs ? "<" : ">=", eval.rhs,
              eval.condition_holds ? "HOLDS" : "fails");
  std::printf("  bound: %.1f steps = %.4f x D\n", eval.bound_steps,
              eval.bound_over_D);
  std::printf("  best over gamma:  finite-n %.4f x D, asymptotic %.4f x D "
              "(Thm 4.2: > 1 means the diameter is unmatchable)\n",
              BestNoCopyBoundOverD(d, n, beta),
              BestNoCopyBoundOverDAsymptotic(d));

  std::printf("-- theorem thresholds --\n");
  for (double eps : {0.4, 0.3, 0.25}) {
    std::printf("  Thm 4.1 (no copy, (3/2-%.2f) D): d0 = %d\n", eps,
                FindD0NoCopy(eps, beta, n, 1 << 20));
  }
  for (double eps : {0.1, 0.2}) {
    std::printf("  Thm 4.3/4.4 premise (delta = 0.01) at eps=%.2f: d0 = %d\n",
                eps, FindD0Copying(eps, 0.01, n));
  }
  std::printf("  Thm 4.5 (selection, (9/16-eps) D): d0(0.05) = %d\n",
              FindD0Selection(0.05));

  // Compatibility of the requested scheme (small sizes only).
  if (d <= 4 && IPow(n, d) <= (1 << 18)) {
    const int b = cli.GetInt("b") > 0 ? static_cast<int>(cli.GetInt("b")) : n / 2;
    try {
      auto scheme = MakeIndexing(cli.GetString("scheme"), d, n, b);
      Topology topo(d, n, Wrap::kMesh);
      CompatibilityResult c = CheckCompatibility(topo, *scheme);
      std::printf("-- compatibility of %s --\n", scheme->Name().c_str());
      std::printf("  minimal joker window w* = %lld (n^(d-1) = %lld), "
                  "beta* = %.3f => %s\n",
                  static_cast<long long>(c.min_window),
                  static_cast<long long>(IPow(n, d - 1)), c.beta,
                  c.compatible ? "compatible (lower bounds apply)"
                               : "NOT compatible");
    } catch (const std::exception& e) {
      std::printf("-- compatibility check skipped: %s --\n", e.what());
    }
  } else {
    std::printf("-- compatibility check skipped (d or n too large to "
                "enumerate) --\n");
  }
  return 0;
}
