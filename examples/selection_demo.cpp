// selection_demo: find an exact order statistic at the center of the mesh
// in ~D steps (Section 4.3 upper bound) and compare against the Theorem 4.5
// lower-bound coefficient.
//
//   $ ./selection_demo --d=3 --n=16
//   $ ./selection_demo --d=2 --n=64 --rank=100
#include <cstdio>

#include "core/mdmesh.h"
#include "util/cli.h"

int main(int argc, char** argv) {
  using namespace mdmesh;
  Cli cli("selection_demo", "median/order-statistic selection at the center");
  cli.AddInt("d", 3, "dimension");
  cli.AddInt("n", 16, "side length");
  cli.AddInt("g", 0, "blocks per side (0 = auto)");
  cli.AddInt("rank", -1, "target rank (-1 = median)");
  cli.AddInt("seed", 5, "rng seed");
  if (!cli.Parse(argc, argv)) return 2;

  MeshSpec spec{static_cast<int>(cli.GetInt("d")),
                static_cast<int>(cli.GetInt("n")), Wrap::kMesh};
  Topology topo = spec.Build();
  BlockGrid grid(topo, cli.GetInt("g") > 0 ? static_cast<int>(cli.GetInt("g"))
                                           : DefaultBlocksPerSide(spec));
  Network net(topo);
  SortOptions opts;
  opts.g = grid.blocks_per_side();
  opts.seed = static_cast<std::uint64_t>(cli.GetInt("seed"));
  FillInput(net, grid, 1, InputKind::kRandom, opts.seed);
  GroundTruth truth = CaptureGroundTruth(net);

  std::int64_t target = cli.GetInt("rank");
  if (target < 0) target = (topo.size() - 1) / 2;
  if (target >= topo.size()) {
    std::fprintf(stderr, "rank out of range (N = %lld)\n",
                 static_cast<long long>(topo.size()));
    return 2;
  }

  SelectResult result = SelectAtCenter(net, grid, opts, target);
  const bool correct =
      result.found &&
      result.selected_key == truth[static_cast<std::size_t>(target)].first;

  std::printf("selecting rank %lld of %lld keys on %s (D = %lld)\n",
              static_cast<long long>(target),
              static_cast<long long>(topo.size()), spec.ToString().c_str(),
              static_cast<long long>(topo.Diameter()));
  std::printf("  candidates routed to the center block: %lld "
              "(rank window +/- %lld)\n",
              static_cast<long long>(result.candidates),
              static_cast<long long>(result.margin));
  std::printf("  routing steps: %lld = %.3f x D (upper bound: D + o(n))\n",
              static_cast<long long>(result.routing_steps),
              result.RatioToDiameter(topo.Diameter()));
  std::printf("  result: key %llu — %s\n",
              static_cast<unsigned long long>(result.selected_key),
              correct ? "matches ground truth" : "WRONG");
  std::printf("  Theorem 4.5: for large d, selection needs >= %.4f x D "
              "(eps = 0.05) — the gap to our %.3f x D is the open band\n",
              SelectionLowerCoefficient(0.05),
              result.RatioToDiameter(topo.Diameter()));
  return correct ? 0 : 1;
}
