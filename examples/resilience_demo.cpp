// resilience_demo: route a random permutation through a network with seeded
// faults and watch the engine cope. Shows the FaultPlan summary, whether the
// damaged network is still strongly connected, the adaptive-detour overhead
// versus the fault-free diameter bound, and — when the run cannot finish —
// the watchdog's structured stall report.
//
// Fault rates are given in per-mille (tenths of a percent) so they stay
// integer flags:
//
//   $ ./resilience_demo --d=2 --n=16 --link-pm=20          # 2% dead links
//   $ ./resilience_demo --d=3 --n=8 --node-pm=30 --seed=7  # 3% dead nodes
//   $ ./resilience_demo --d=2 --n=32 --flap-pm=50          # transient flaps
//   $ ./resilience_demo --link-pm=500 --stall-window=32    # likely stall
//
// With --flight-recorder=PATH the engine keeps a black-box ring of recent
// step records and dumps it to PATH when the watchdog fires, the step cap
// hits, an invariant trips, or the process takes SIGINT/SIGTERM — the last
// records of a stalled run, ready for postmortem. --progress adds a stderr
// heartbeat.
#include <cstdio>
#include <memory>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/mdmesh.h"
#include "routing/policy.h"
#include "util/cli.h"

namespace {

// In-flight packet counts over time, bucketed into a fixed-width bar chart.
std::string Sparkline(const std::vector<std::int64_t>& series, int width) {
  static const char* levels[] = {" ", ".", ":", "-", "=", "+", "*", "#"};
  if (series.empty()) return "";
  std::int64_t peak = 1;
  for (std::int64_t v : series) peak = std::max(peak, v);
  std::string out;
  const std::size_t n = series.size();
  for (int x = 0; x < width; ++x) {
    const std::size_t at =
        static_cast<std::size_t>(x) * n / static_cast<std::size_t>(width);
    out += levels[static_cast<std::size_t>(series[at] * 7 / peak)];
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace mdmesh;
  Cli cli("resilience_demo",
          "permutation routing under seeded link/node faults");
  cli.AddInt("d", 2, "dimension");
  cli.AddInt("n", 16, "side length");
  cli.AddBool("mesh", false, "open mesh edges (default is a torus)");
  cli.AddInt("link-pm", 10, "dead directed links, per mille");
  cli.AddInt("node-pm", 0, "dead processors, per mille");
  cli.AddInt("flap-pm", 0, "flapping links, per mille");
  cli.AddInt("seed", 1, "seed for both the FaultPlan and the permutation");
  cli.AddInt("isolate", -1,
             "surgically kill every link around this processor; its "
             "outbound packet freezes and the watchdog fires once the "
             "rest deliver (guaranteed-stall demo)");
  cli.AddInt("stall-window", 0,
             "watchdog window in steps (0 = auto, negative disables)");
  cli.AddBool("invariants", false, "run the per-step invariant checker");
  AddOutputFlags(cli);
  if (!cli.Parse(argc, argv)) return 2;
  const OutputFlags out = GetOutputFlags(cli);

  const MeshSpec spec{static_cast<int>(cli.GetInt("d")),
                      static_cast<int>(cli.GetInt("n")),
                      cli.GetBool("mesh") ? Wrap::kMesh : Wrap::kTorus};
  const Topology topo = spec.Build();
  const auto seed = static_cast<std::uint64_t>(cli.GetInt("seed"));

  FaultSpec fs;
  fs.link_rate = static_cast<double>(cli.GetInt("link-pm")) / 1000.0;
  fs.node_rate = static_cast<double>(cli.GetInt("node-pm")) / 1000.0;
  fs.flap_rate = static_cast<double>(cli.GetInt("flap-pm")) / 1000.0;
  FaultPlan plan = FaultPlan::Random(topo, fs, seed);
  const std::int64_t isolate = cli.GetInt("isolate");
  if (isolate >= topo.size()) {
    std::fprintf(stderr, "--isolate=%lld out of range (size %lld)\n",
                 static_cast<long long>(isolate),
                 static_cast<long long>(topo.size()));
    return 2;
  }
  if (isolate >= 0) {
    // Sever the processor from the network but leave it alive: random
    // link faults make packets bounce (obstacle-following counts as
    // progress), whereas a fully severed proc's packet cannot move at
    // all, so this is the one configuration that reliably trips the
    // no-progress watchdog rather than burning to the step cap.
    for (int dim = 0; dim < spec.d; ++dim) {
      for (int dir = 0; dir < 2; ++dir) {
        plan.KillLinkPair(static_cast<ProcId>(isolate), dim, dir);
      }
    }
  }
  const bool connected = plan.Connected();

  std::printf("%s, seed %llu: %lld dead links, %lld dead nodes, %zu flaps\n",
              spec.ToString().c_str(), static_cast<unsigned long long>(seed),
              static_cast<long long>(plan.dead_link_count()),
              static_cast<long long>(plan.dead_node_count()),
              plan.flap_count());
  std::printf("alive subgraph strongly connected: %s\n",
              connected ? "yes" : "NO (some pairs cannot route)");

  // A random permutation over the full id space; packets that start on or
  // target a dead processor are erased (a dead node can neither send nor
  // receive), mirroring how a real system would drop their traffic.
  Network net(topo);
  Rng rng(seed * 7919);
  const std::vector<ProcId> dest = RandomPermutation(topo, rng);
  for (ProcId p = 0; p < topo.size(); ++p) {
    Packet pkt;
    pkt.id = p;
    pkt.dest = dest[static_cast<std::size_t>(p)];
    pkt.klass = static_cast<std::uint16_t>(p % spec.d);
    net.Add(p, pkt);
  }
  const std::int64_t erased = net.EraseIf([&](ProcId p, const Packet& pkt) {
    // Packets aimed at a severed processor can never arrive and would
    // bounce around its neighborhood forever; drop them like dead-node
    // traffic. The severed proc's own outbound packet stays — frozen.
    return plan.NodeDead(p) || plan.NodeDead(pkt.dest) ||
           (isolate >= 0 && pkt.dest == isolate && p != pkt.dest);
  });
  const std::int64_t reassigned = ReassignClassesForFaults(net, plan);
  if (erased > 0 || reassigned > 0) {
    std::printf("dropped %lld packet(s) touching dead nodes; "
                "reassigned %lld first-hop class(es)\n",
                static_cast<long long>(erased),
                static_cast<long long>(reassigned));
  }

  EngineOptions opts;
  opts.faults = &plan;
  opts.stall_window = cli.GetInt("stall-window");
  opts.invariants =
      cli.GetBool("invariants") ? InvariantMode::kOn : InvariantMode::kAuto;
  FlightRecorder recorder;
  if (out.WantsFlightRecorder()) {
    recorder.set_dump_path(out.flight_recorder);
    FlightRecorder::InstallSignalHandlers();
    opts.recorder = &recorder;
  }
  // --checkpoint: snapshot the faulted run on a cadence and on aborts, so a
  // stalled or interrupted campaign restarts mid-route (--resume) instead
  // of from scratch. Fault state resumes too — the plan's flap events are
  // replayed up to the checkpoint's cursor.
  std::unique_ptr<CheckpointManager> ckpt;
  if (out.WantsCheckpoint()) {
    CheckpointOptions copts;
    copts.dir = out.checkpoint;
    copts.every_steps = out.checkpoint_every > 0 ? out.checkpoint_every : 64;
    copts.keep = static_cast<int>(out.checkpoint_keep);
    ckpt = std::make_unique<CheckpointManager>(copts);
    FlightRecorder::InstallSignalHandlers();
    opts.checkpoint = ckpt.get();
  }
  ProgressMeter meter(/*step_cap=*/0, /*interval_ms=*/500, out.progress);
  std::vector<std::int64_t> in_flight_series;
  opts.observer = [&](std::int64_t step, std::int64_t in_flight,
                      std::int64_t arrivals) {
    in_flight_series.push_back(in_flight);
    meter.Step(step, in_flight, arrivals);
  };
  Engine engine(topo, opts);
  RouteResult r;
  if (out.resume) {
    if (ckpt == nullptr) {
      std::fprintf(stderr, "--resume requires --checkpoint=DIR\n");
      return 2;
    }
    EngineCheckpointState state;
    std::string loaded_path;
    std::string log;
    const CkptStatus status = CheckpointManager::LoadNewestValid(
        out.checkpoint, &state, /*expected_options_hash=*/nullptr,
        &loaded_path, &log);
    if (!log.empty()) std::fprintf(stderr, "[ckpt] skipped:\n%s", log.c_str());
    if (status != CkptStatus::kOk) {
      std::fprintf(stderr, "--resume: no valid checkpoint in %s (%s)\n",
                   out.checkpoint.c_str(), CkptStatusName(status));
      return 1;
    }
    std::fprintf(stderr, "[ckpt] resuming from %s (step %lld)\n",
                 loaded_path.c_str(), static_cast<long long>(state.step));
    try {
      r = engine.Resume(net, state);
    } catch (const std::invalid_argument& e) {
      std::fprintf(stderr, "--resume: %s\n", e.what());
      return 1;
    }
  } else {
    r = engine.Route(net);
  }
  meter.Finish();

  const auto D = static_cast<double>(topo.Diameter());
  if (r.completed) {
    std::printf("delivered %lld packet(s) in %lld steps = %.3f x D "
                "(fault-free run takes ~D)\n",
                static_cast<long long>(r.packets),
                static_cast<long long>(r.steps),
                static_cast<double>(r.steps) / D);
    std::printf("%lld of %lld moves were adaptive detours (%.2f%%), "
                "max queue %lld\n",
                static_cast<long long>(r.detours),
                static_cast<long long>(r.moves),
                r.moves > 0 ? 100.0 * static_cast<double>(r.detours) /
                                  static_cast<double>(r.moves)
                            : 0.0,
                static_cast<long long>(r.max_queue));
  } else if (r.stall_report != nullptr) {
    std::printf("run aborted:\n%s\n", r.stall_report->ToString().c_str());
  }
  std::printf("in-flight packets over time:\n  [%s]\n",
              Sparkline(in_flight_series, 64).c_str());

  if (out.WantsJson()) {
    BenchJson json("resilience_demo");
    std::ostringstream os;
    JsonWriter w(os);
    w.BeginObject();
    w.Key("spec").BeginObject();
    w.Key("d").Int(spec.d);
    w.Key("n").Int(spec.n);
    w.Key("wrap").String(spec.wrap == Wrap::kTorus ? "torus" : "mesh");
    w.EndObject();
    w.Key("seed").Int(static_cast<std::int64_t>(seed));
    w.Key("connected").Bool(connected);
    w.Key("faults");
    plan.WriteJson(w);
    w.Key("erased").Int(erased);
    w.Key("reassigned").Int(reassigned);
    w.Key("result");
    r.WriteJson(w);
    w.EndObject();
    json.AddRaw(os.str());
    json.WriteFile(out.json);
  }
  return r.completed ? 0 : 1;
}
