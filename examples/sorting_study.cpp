// sorting_study: run any of the paper's sorting algorithms on any mesh/torus
// and inspect the per-phase accounting.
//
//   $ ./sorting_study --algo=simple --d=3 --n=16 --g=2
//   $ ./sorting_study --algo=copy --d=2 --n=64 --g=4 --input=desc
//   $ ./sorting_study --algo=torus --torus --d=2 --n=32 --k=2
//   $ ./sorting_study --algo=simple --trace --json=run.json --trace-csv=run.csv
#include <cstdio>
#include <fstream>
#include <stdexcept>

#include "core/mdmesh.h"
#include "util/cli.h"

namespace {

mdmesh::InputKind ParseInput(const std::string& name) {
  using mdmesh::InputKind;
  if (name == "random") return InputKind::kRandom;
  if (name == "asc") return InputKind::kSortedAsc;
  if (name == "desc") return InputKind::kSortedDesc;
  if (name == "equal") return InputKind::kAllEqual;
  if (name == "few") return InputKind::kFewValues;
  throw std::invalid_argument("unknown input kind: " + name);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace mdmesh;
  Cli cli("sorting_study",
          "run a sorting algorithm from Suel (SPAA'94) on a simulated mesh");
  cli.AddString("algo", "simple", "simple | copy | torus | full");
  cli.AddInt("d", 3, "dimension");
  cli.AddInt("n", 16, "side length");
  cli.AddInt("g", 0, "blocks per side (0 = auto)");
  cli.AddInt("k", 1, "packets per processor (k-k sorting)");
  cli.AddBool("torus", false, "wraparound edges");
  cli.AddString("input", "random", "random | asc | desc | equal | few");
  cli.AddString("cost", "oracle", "local-sort cost model: oracle | linear | measured");
  cli.AddInt("seed", 1, "rng seed");
  cli.AddBool("trace", false, "print the phase-span tree after the run");
  AddOutputFlags(cli);
  if (!cli.Parse(argc, argv)) return 2;
  const OutputFlags out = GetOutputFlags(cli);

  MeshSpec spec{static_cast<int>(cli.GetInt("d")),
                static_cast<int>(cli.GetInt("n")),
                cli.GetBool("torus") ? Wrap::kTorus : Wrap::kMesh};
  SortOptions opts;
  opts.g = static_cast<int>(cli.GetInt("g"));
  opts.k = static_cast<int>(cli.GetInt("k"));
  opts.seed = static_cast<std::uint64_t>(cli.GetInt("seed"));
  const std::string cost = cli.GetString("cost");
  opts.cost = cost == "linear"     ? LocalCostModel::kLinear
              : cost == "measured" ? LocalCostModel::kMeasured
                                   : LocalCostModel::kOracle;

  TraceContext trace_ctx;
  opts.trace = &trace_ctx;
  CongestionTrace congestion;
  if (out.WantsTrace()) opts.engine.probe = &congestion;

  SortAlgo algo = ParseSortAlgo(cli.GetString("algo"));
  SortRow row =
      RunSortExperiment(algo, spec, opts, ParseInput(cli.GetString("input")));

  std::printf("%s on %s (D = %lld, claimed coefficient %.2f)\n",
              SortAlgoName(algo), spec.ToString().c_str(),
              static_cast<long long>(row.diameter), row.claimed);
  Table phases({"phase", "routing", "local", "max_dist", "max_q"});
  for (const PhaseStats& phase : row.result.phases) {
    phases.Row()
        .Cell(phase.name)
        .Cell(phase.routing_steps)
        .Cell(phase.local_steps)
        .Cell(phase.max_distance)
        .Cell(phase.max_queue);
  }
  phases.Print();
  std::printf("total: %s\n", row.result.Summary(row.diameter).c_str());
  std::printf("routing/D = %.3f (claimed %.2f + o(n)/D)\n", row.ratio,
              row.claimed);
  if (cli.GetBool("trace")) {
    std::printf("\nphase spans:\n%s", trace_ctx.RenderTree(row.diameter).c_str());
  }
  if (out.WantsJson()) {
    BenchJson json("sorting_study");
    json.Add(row);
    json.WriteFile(out.json);
  }
  if (out.WantsTrace()) {
    std::ofstream csv = OpenOutputFile(out.trace_csv, "--trace-csv");
    congestion.WriteCsv(csv);
    std::fprintf(stderr, "wrote %zu trace sample(s) to %s\n",
                 congestion.samples().size(), out.trace_csv.c_str());
  }
  return row.result.sorted ? 0 : 1;
}
