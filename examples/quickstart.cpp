// Quickstart: the mdmesh public API in ~60 lines.
//
// Builds a 3-dimensional 16^3 mesh, fills it with one random-keyed packet
// per processor, sorts with SimpleSort (Theorem 3.1), verifies the result,
// and routes a permutation with the Section 5 two-phase router.
//
//   $ ./quickstart
#include <cstdio>

#include "core/mdmesh.h"

int main() {
  using namespace mdmesh;

  // 1. A 3-dimensional mesh of side 16 (4096 processors), partitioned into
  //    2^3 blocks for the blocked snake-like indexing scheme.
  Topology topo(/*d=*/3, /*n=*/16, Wrap::kMesh);
  BlockGrid grid(topo, /*g=*/2);
  std::printf("network: d=%d n=%d N=%lld diameter D=%lld\n", topo.dim(),
              topo.side(), static_cast<long long>(topo.size()),
              static_cast<long long>(topo.Diameter()));

  // 2. One random-keyed packet per processor.
  Network net(topo);
  FillInput(net, grid, /*k=*/1, InputKind::kRandom, /*seed=*/42);

  // 3. Sort with SimpleSort (3D/2 + o(n), no copies) and verify.
  SortOptions opts;
  opts.g = grid.blocks_per_side();
  SortResult sorted = RunSort(SortAlgo::kSimple, net, grid, opts);
  std::printf("SimpleSort: %s\n",
              sorted.Summary(topo.Diameter()).c_str());

  // 4. Route a worst-case permutation with the near-diameter two-phase
  //    router of Section 5 (D + n + o(n) on meshes).
  TwoPhaseOptions route_opts;
  route_opts.g = 2;
  TwoPhaseResult routed =
      RouteTwoPhase(topo, ReversalPermutation(topo), route_opts);
  std::printf("two-phase reversal routing: %lld steps (%.3f x D), %s\n",
              static_cast<long long>(routed.total_steps),
              routed.steps_over_diameter(topo.Diameter()),
              routed.delivered ? "all delivered" : "INCOMPLETE");

  // 5. The Section 4 lower bound for comparison: sorting without copying
  //    needs ~(3/2 - eps) D steps once d is large enough.
  Lemma42Eval bound = EvalLemma42(/*d=*/32, /*n=*/33, /*gamma=*/0.5, /*beta=*/0.7);
  std::printf("Lemma 4.2 at d=32: capacity condition %s, bound = %.3f x D\n",
              bound.condition_holds ? "holds" : "does not hold",
              bound.bound_over_D);
  return sorted.sorted && routed.delivered ? 0 : 1;
}
