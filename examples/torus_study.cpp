// torus_study: the torus-specific results in one walkthrough — TorusSort
// (Theorem 3.3), d-d sorting (Corollary 3.3.1), 2d-permutation greedy
// routing (Lemma 2.1), and near-diameter routing (Theorem 5.2).
//
//   $ ./torus_study --d=3 --n=16
#include <cstdio>

#include "core/mdmesh.h"
#include "util/cli.h"

int main(int argc, char** argv) {
  using namespace mdmesh;
  Cli cli("torus_study", "the paper's torus results on one network");
  cli.AddInt("d", 3, "dimension");
  cli.AddInt("n", 16, "side length (even)");
  cli.AddInt("g", 0, "blocks per side (0 = auto)");
  cli.AddInt("seed", 9, "rng seed");
  if (!cli.Parse(argc, argv)) return 2;

  MeshSpec spec{static_cast<int>(cli.GetInt("d")),
                static_cast<int>(cli.GetInt("n")), Wrap::kTorus};
  const auto seed = static_cast<std::uint64_t>(cli.GetInt("seed"));
  Topology topo = spec.Build();
  const auto D = static_cast<double>(topo.Diameter());
  std::printf("torus d=%d n=%d: N = %lld, D = %lld\n\n", spec.d, spec.n,
              static_cast<long long>(topo.size()),
              static_cast<long long>(topo.Diameter()));

  // Lemma 2.1: 2d random permutations, distance-optimally.
  {
    GreedyRow row = RunGreedyExperiment(spec, 2 * spec.d, seed);
    std::printf("[Lemma 2.1] %d simultaneous random permutations: %lld steps "
                "(%.3f x D), max overshoot %lld (= %.2f n)\n",
                2 * spec.d, static_cast<long long>(row.run.route.steps),
                row.run.steps_over_diameter(),
                static_cast<long long>(row.run.route.max_overshoot),
                row.run.overshoot_over_n(spec.n));
  }

  // Theorem 3.3: TorusSort at 3D/2.
  {
    SortOptions opts;
    opts.g = static_cast<int>(cli.GetInt("g"));
    opts.seed = seed;
    SortRow row = RunSortExperiment(SortAlgo::kTorus, spec, opts);
    std::printf("[Theorem 3.3] TorusSort: routing %lld steps = %.3f x D "
                "(claimed 1.5), %s\n",
                static_cast<long long>(row.result.routing_steps), row.ratio,
                row.result.sorted ? "sorted" : "UNSORTED");
  }

  // Corollary 3.3.1: d-d sorting.
  {
    SortOptions opts;
    opts.g = static_cast<int>(cli.GetInt("g"));
    opts.k = spec.d;
    opts.seed = seed;
    SortRow row = RunSortExperiment(SortAlgo::kTorus, spec, opts);
    std::printf("[Corollary 3.3.1] %d-%d sorting: routing %lld steps = "
                "%.3f x D, %s\n",
                spec.d, spec.d,
                static_cast<long long>(row.result.routing_steps), row.ratio,
                row.result.sorted ? "sorted" : "UNSORTED");
  }

  // Theorem 5.2: routing with nu = n/16.
  {
    TwoPhaseOptions opts;
    opts.g = spec.n % 4 == 0 ? 4 : 2;
    opts.seed = seed;
    RoutingRow row = RunRoutingExperiment(spec, "reversal", opts);
    std::printf("[Theorem 5.2] two-phase reversal routing: %lld steps = "
                "%.3f x D (claimed <= (D + n/8)/D = %.3f), %s\n",
                static_cast<long long>(row.two_phase.total_steps),
                static_cast<double>(row.two_phase.total_steps) / D,
                1.0 + spec.n / 8.0 / D,
                row.two_phase.delivered ? "delivered" : "INCOMPLETE");
  }
  return 0;
}
