// experiment_server: the always-on mdmesh experiment service.
//
// Accepts JSON run requests over loopback HTTP, schedules them across a
// worker pool with priorities, dedup, and a bounded queue, and streams each
// run's metrics + Perfetto trace into per-run artifact directories:
//
//   $ ./experiment_server --port=8080 --artifacts=exp --workers=2
//   $ curl -X POST 127.0.0.1:8080/runs -d '{"topology":{"d":2,"n":8},
//       "pattern":{"kind":"uniform"},"driver":{"rate":0.1,"warmup":32,
//       "measure":128,"drain":true}}'
//   $ curl 127.0.0.1:8080/runs          # all runs + state counts
//   $ curl 127.0.0.1:8080/metrics       # Prometheus text
//
// SIGTERM/SIGINT drain gracefully: in-flight runs checkpoint through the
// engine's interrupt path, the queue persists to <artifacts>/queue.json,
// and restarting the server with the same --artifacts resumes every
// interrupted run from its newest checkpoint — byte-identical results to an
// uninterrupted run (scripts/serve_client.py drives the full drill).
#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <string>
#include <thread>

#include "core/mdmesh.h"
#include "util/atomic_file.h"
#include "util/cli.h"

namespace {

// The binary owns SIGTERM/SIGINT (rather than FlightRecorder's handlers):
// the engine *consumes* the FlightRecorder flag each time a run aborts, so
// the main loop could miss it; this flag is only ever cleared by exit.
std::atomic<bool> g_shutdown{false};

void OnSignal(int) { g_shutdown.store(true, std::memory_order_release); }

void InstallShutdownHandlers() {
#if !defined(_WIN32)
  struct sigaction sa = {};
  sa.sa_handler = OnSignal;
  sigemptyset(&sa.sa_mask);
  sigaction(SIGTERM, &sa, nullptr);
  sigaction(SIGINT, &sa, nullptr);
#else
  std::signal(SIGTERM, OnSignal);
  std::signal(SIGINT, OnSignal);
#endif
}

}  // namespace

int main(int argc, char** argv) {
  using namespace mdmesh;
  Cli cli("experiment_server",
          "always-on experiment service: queued runs over HTTP");
  cli.AddInt("port", 0, "HTTP port on 127.0.0.1 (0 = ephemeral)");
  cli.AddString("artifacts", "serve-artifacts",
                "artifact root (queue.json + per-run directories)");
  cli.AddInt("workers", 2, "concurrent runs");
  cli.AddInt("threads-per-run", 0, "engine threads per run (0 = serial)");
  cli.AddInt("queue-limit", 64, "max queued runs before 429 rejection");
  cli.AddInt("checkpoint-every", 256, "checkpoint cadence in steps");
  cli.AddInt("checkpoint-keep", 2, "checkpoint generations kept per run");
  cli.AddInt("keep-completed-runs", 0,
             "retention: keep only the newest K completed run directories, "
             "evicting older artifacts (0 = keep everything)");
  cli.AddInt("journey-rate-pm", 10,
             "journey sample rate per run, in per-mille of packet ids "
             "(10 = 1%; 0 disables the journeys.jsonl artifact)");
  cli.AddString("port-file", "",
                "write the bound port here (atomically) once listening");
  if (!cli.Parse(argc, argv)) return 2;

  ServiceOptions opts;
  opts.port = static_cast<int>(cli.GetInt("port"));
  opts.scheduler.artifacts_dir = cli.GetString("artifacts");
  opts.scheduler.workers = static_cast<int>(cli.GetInt("workers"));
  opts.scheduler.threads_per_run =
      static_cast<int>(cli.GetInt("threads-per-run"));
  opts.scheduler.queue_limit =
      static_cast<std::size_t>(cli.GetInt("queue-limit"));
  opts.scheduler.checkpoint_every_steps = cli.GetInt("checkpoint-every");
  opts.scheduler.checkpoint_keep =
      static_cast<int>(cli.GetInt("checkpoint-keep"));
  opts.scheduler.keep_completed_runs = cli.GetInt("keep-completed-runs");
  opts.scheduler.journey_rate_pm = cli.GetInt("journey-rate-pm");

  InstallShutdownHandlers();

  ExperimentService service(opts);
  std::string error;
  if (!service.Start(&error)) {
    std::fprintf(stderr, "experiment_server: %s\n", error.c_str());
    return 1;
  }
  std::printf("serving http://127.0.0.1:%d (artifacts: %s, workers: %lld)\n",
              service.port(), opts.scheduler.artifacts_dir.c_str(),
              static_cast<long long>(opts.scheduler.workers));
  std::fflush(stdout);
  const std::string port_file = cli.GetString("port-file");
  if (!port_file.empty()) {
    std::string werr;
    if (!WriteFileAtomic(port_file, std::to_string(service.port()) + "\n",
                         &werr)) {
      std::fprintf(stderr, "experiment_server: %s\n", werr.c_str());
      return 1;
    }
  }

  const std::int64_t resumed = service.scheduler().resumed_runs();
  while (!g_shutdown.load(std::memory_order_acquire)) {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }

  std::fprintf(stderr, "experiment_server: draining...\n");
  service.Stop();
  const RunScheduler::Counts counts = service.scheduler().CountByState();
  std::fprintf(stderr,
               "experiment_server: drained (queued %lld, interrupted %lld, "
               "done %lld, failed %lld, resumed this session %lld)\n",
               static_cast<long long>(counts.queued),
               static_cast<long long>(counts.interrupted),
               static_cast<long long>(counts.done),
               static_cast<long long>(counts.failed),
               static_cast<long long>(service.scheduler().resumed_runs() -
                                      resumed));
  return 0;
}
