// trace_viewer: ASCII heatmap of a per-step congestion trace produced with
// --trace-csv (CongestionTrace::WriteCsv) by any bench or study binary.
//
//   $ ./routing_study --perm=transpose --d=2 --n=32 --trace-csv=trace.csv
//   $ ./trace_viewer --in=trace.csv
//   $ ./trace_viewer --demo          # self-generated transpose trace
//
// Rows are directed dimension links (dim0_dec = packets crossing a dimension-0
// link toward lower coordinates, ...), columns are time buckets; darker cells
// carry more packet-moves. The funnel worst cases (transpose) show up as a
// bright band on one dimension while the others idle.
#include <algorithm>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/mdmesh.h"
#include "routing/permutations.h"
#include "util/cli.h"

namespace {

using mdmesh::CongestionTrace;

struct TraceData {
  std::vector<long long> step;
  std::vector<double> in_flight;
  std::vector<double> moves;
  std::vector<double> queue_max;
  std::vector<std::string> dim_labels;         // dim0_dec, dim0_inc, ...
  std::vector<std::vector<double>> dim_moves;  // [label][sample]
};

std::vector<std::string> SplitCsvLine(const std::string& line) {
  std::vector<std::string> fields;
  std::string field;
  std::istringstream is(line);
  while (std::getline(is, field, ',')) fields.push_back(field);
  return fields;
}

TraceData ParseCsv(std::istream& is) {
  std::string line;
  if (!std::getline(is, line)) {
    throw std::runtime_error("trace_viewer: empty trace");
  }
  const std::vector<std::string> header = SplitCsvLine(line);
  TraceData data;
  std::vector<std::size_t> dim_cols;
  std::size_t step_col = 0, in_flight_col = 0, moves_col = 0, qmax_col = 0;
  for (std::size_t c = 0; c < header.size(); ++c) {
    if (header[c] == "step") step_col = c;
    if (header[c] == "in_flight") in_flight_col = c;
    if (header[c] == "moves") moves_col = c;
    if (header[c] == "queue_max") qmax_col = c;
    if (header[c].rfind("dim", 0) == 0) {
      data.dim_labels.push_back(header[c]);
      dim_cols.push_back(c);
    }
  }
  data.dim_moves.resize(data.dim_labels.size());
  while (std::getline(is, line)) {
    if (line.empty()) continue;
    const std::vector<std::string> fields = SplitCsvLine(line);
    if (fields.size() != header.size()) {
      throw std::runtime_error("trace_viewer: ragged CSV row");
    }
    data.step.push_back(std::stoll(fields[step_col]));
    data.in_flight.push_back(std::stod(fields[in_flight_col]));
    data.moves.push_back(std::stod(fields[moves_col]));
    data.queue_max.push_back(std::stod(fields[qmax_col]));
    for (std::size_t i = 0; i < dim_cols.size(); ++i) {
      data.dim_moves[i].push_back(std::stod(fields[dim_cols[i]]));
    }
  }
  if (data.step.empty()) throw std::runtime_error("trace_viewer: no samples");
  return data;
}

// Buckets `series` into `width` columns (mean per bucket).
std::vector<double> Bucket(const std::vector<double>& series, int width) {
  const std::size_t n = series.size();
  const auto w = static_cast<std::size_t>(width);
  std::vector<double> out(w, 0.0);
  std::vector<int> counts(w, 0);
  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t x = i * w / n;
    out[x] += series[i];
    ++counts[x];
  }
  for (std::size_t x = 0; x < w; ++x) {
    if (counts[x] > 0) out[x] /= counts[x];
  }
  return out;
}

std::string HeatRow(const std::vector<double>& bucketed, double peak) {
  static const char kLevels[] = " .:-=+*#@";
  std::string out;
  for (double v : bucketed) {
    const int level =
        peak > 0.0 ? static_cast<int>(v / peak * 8.0 + 0.5) : 0;
    out += kLevels[level < 0 ? 0 : (level > 8 ? 8 : level)];
  }
  return out;
}

void Render(const TraceData& data, int width) {
  std::printf("congestion trace: %zu samples, steps %lld..%lld\n",
              data.step.size(), static_cast<long long>(data.step.front()),
              static_cast<long long>(data.step.back()));

  double peak = 0.0;
  for (const auto& series : data.dim_moves) {
    for (double v : series) peak = std::max(peak, v);
  }
  std::printf("\nlink load per directed dimension (peak %.0f moves/step, "
              "darker = busier):\n", peak);
  for (std::size_t i = 0; i < data.dim_labels.size(); ++i) {
    std::printf("  %-9s |%s|\n", data.dim_labels[i].c_str(),
                HeatRow(Bucket(data.dim_moves[i], width), peak).c_str());
  }

  double flight_peak = 0.0;
  for (double v : data.in_flight) flight_peak = std::max(flight_peak, v);
  std::printf("\nin-flight  |%s| peak %.0f\n",
              HeatRow(Bucket(data.in_flight, width), flight_peak).c_str(),
              flight_peak);
  double q_peak = 0.0;
  for (double v : data.queue_max) q_peak = std::max(q_peak, v);
  std::printf("queue max  |%s| peak %.0f\n",
              HeatRow(Bucket(data.queue_max, width), q_peak).c_str(), q_peak);
}

// Re-exports a parsed CSV trace as Chrome-trace counter tracks so an old
// --trace-csv artifact can be opened in Perfetto without rerunning the
// experiment. Timestamps are the simulated step numbers (1 step = 1 us of
// trace time), matching the live AddCounters layout.
void WritePerfettoTrace(const TraceData& data, const std::string& path) {
  using namespace mdmesh;
  RunManifest manifest;
  manifest.binary = "trace_viewer";
  ChromeTraceWriter writer(manifest);
  for (std::size_t i = 0; i < data.step.size(); ++i) {
    const double ts = static_cast<double>(data.step[i]);
    writer.AddCounter("in_flight", ts,
                      static_cast<std::int64_t>(data.in_flight[i]));
    writer.AddCounter("moves", ts, static_cast<std::int64_t>(data.moves[i]));
    writer.AddCounter("queue_max", ts,
                      static_cast<std::int64_t>(data.queue_max[i]));
    for (std::size_t lbl = 0; lbl < data.dim_labels.size(); ++lbl) {
      writer.AddCounter("moves." + data.dim_labels[lbl], ts,
                        static_cast<std::int64_t>(data.dim_moves[lbl][i]));
    }
  }
  writer.WriteFile(path);
}

// Self-generated demo: the transpose funnel on a small 2D mesh, routed
// greedily — dimension 0 lights up while dimension 1 drains late.
std::string DemoCsv() {
  using namespace mdmesh;
  Topology topo(2, 32, Wrap::kMesh);
  std::vector<ProcId> dest = TransposePermutation(topo);
  CongestionTrace trace;
  GreedyOptions opts;
  opts.engine.probe = &trace;
  RouteOnePermutation(topo, dest, opts);
  std::ostringstream os;
  trace.WriteCsv(os);
  return os.str();
}

}  // namespace

int main(int argc, char** argv) {
  using namespace mdmesh;
  Cli cli("trace_viewer",
          "ASCII heatmap for --trace-csv congestion traces");
  cli.AddString("in", "", "trace CSV produced with --trace-csv");
  cli.AddBool("demo", false, "render a self-generated demo trace instead");
  cli.AddInt("width", 72, "heatmap width in characters");
  AddOutputFlags(cli);
  if (!cli.Parse(argc, argv)) return 2;
  const OutputFlags out = GetOutputFlags(cli);

  const int width = std::max(8, static_cast<int>(cli.GetInt("width")));
  try {
    TraceData data;
    if (cli.GetBool("demo")) {
      std::istringstream is(DemoCsv());
      data = ParseCsv(is);
      std::printf("demo: transpose permutation, greedy routing, "
                  "mesh(d=2,n=32)\n");
    } else {
      const std::string path = cli.GetString("in");
      if (path.empty()) {
        std::fprintf(stderr, "trace_viewer: need --in=<trace.csv> or --demo\n");
        return 2;
      }
      std::ifstream is(path);
      if (!is) {
        std::fprintf(stderr, "trace_viewer: cannot open %s\n", path.c_str());
        return 2;
      }
      data = ParseCsv(is);
    }
    if (out.WantsPerfetto()) WritePerfettoTrace(data, out.perfetto);
    Render(data, width);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "%s\n", e.what());
    return 1;
  }
  return 0;
}
