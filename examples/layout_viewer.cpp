// layout_viewer: print 2D indexing schemes as grids — the fastest way to
// see what "blocked snake-like" (the scheme every sorting algorithm here
// assumes) actually looks like, and why Morton's smeared hyperplanes hurt
// its joker-window compatibility.
//
//   $ ./layout_viewer --n=8 --b=4
#include <cstdio>
#include <memory>
#include <vector>

#include "core/mdmesh.h"
#include "util/cli.h"

namespace {

void PrintGrid(const mdmesh::Topology& topo, const mdmesh::IndexingScheme& scheme) {
  const int n = topo.side();
  std::printf("%s:\n", scheme.Name().c_str());
  // Row = dimension-1 coordinate, printed top-down.
  for (int y = n - 1; y >= 0; --y) {
    std::printf("  ");
    for (int x = 0; x < n; ++x) {
      mdmesh::Point p{};
      p[0] = x;
      p[1] = y;
      std::printf("%4lld", static_cast<long long>(scheme.Index(p)));
    }
    std::printf("\n");
  }
  // Center region membership under a g=4 grid, for the same picture.
  std::printf("\n");
}

}  // namespace

int main(int argc, char** argv) {
  using namespace mdmesh;
  Cli cli("layout_viewer", "visualize 2D indexing schemes and the center region");
  cli.AddInt("n", 8, "side length (power of two shows morton too)");
  cli.AddInt("b", 0, "block side for blocked schemes (0 = n/2)");
  if (!cli.Parse(argc, argv)) return 2;

  const int n = static_cast<int>(cli.GetInt("n"));
  const int b = cli.GetInt("b") > 0 ? static_cast<int>(cli.GetInt("b")) : n / 2;
  Topology topo(2, n, Wrap::kMesh);

  std::vector<std::unique_ptr<IndexingScheme>> schemes;
  schemes.push_back(MakeIndexing("row-major", 2, n, 0));
  schemes.push_back(MakeIndexing("snake", 2, n, 0));
  if (n % b == 0) schemes.push_back(MakeIndexing("blocked-snake", 2, n, b));
  if ((n & (n - 1)) == 0) {
    schemes.push_back(MakeIndexing("morton", 2, n, 0));
    schemes.push_back(MakeIndexing("hilbert", 2, n, 0));
  }

  for (const auto& scheme : schemes) {
    PrintGrid(topo, *scheme);
    CompatibilityResult c = CheckCompatibility(topo, *scheme);
    std::printf("  joker window w* = %lld (beta* = %.3f)\n\n",
                static_cast<long long>(c.min_window), c.beta);
  }

  // Show the center region C (Section 3.1) on the block grid.
  if (n % 4 == 0) {
    BlockGrid grid(topo, 4);
    CenterRegion region(grid, grid.num_blocks() / 2);
    std::printf("center region C (m/2 = %lld of %lld blocks, g=4; "
                "# = in C):\n",
                static_cast<long long>(region.count()),
                static_cast<long long>(grid.num_blocks()));
    for (int by = 3; by >= 0; --by) {
      std::printf("  ");
      for (int bx = 0; bx < 4; ++bx) {
        Point bc{};
        bc[0] = bx;
        bc[1] = by;
        std::printf("%s", region.Contains(grid.BlockAtCoords(bc)) ? " #" : " .");
      }
      std::printf("\n");
    }
    std::printf("  radius %.1f vs D/4 = %.1f\n", region.radius(),
                static_cast<double>(topo.Diameter()) / 4.0);
  }
  return 0;
}
